"""Experiment drivers: one function per table/figure of the paper.

Each driver works in two phases (the plan/collect shape):

- a ``*_plan()`` function enumerates the :class:`~repro.exec.jobs.SimJob`
  specs the table or figure needs — the whole sweep as a flat job list,
  with nothing simulated yet;
- the driver hands the plan to a :class:`~repro.exec.pool.JobRunner`
  (callers pass ``runner=`` to share one pool + result cache across
  drivers; the default is an in-process serial runner) and assembles its
  result structure from the returned ``{job_key: RunStats}`` map.

Because jobs are keyed by canonical spec, duplicate configurations —
the full-map baselines shared between figures, the WORKER runs shared
by Tables 1 and 2 — coalesce before any simulation runs, and the
assembled output is identical for any worker count.

The ``benchmarks/`` suite formats driver results into the paper's
tables and figures, and ``EXPERIMENTS.md`` records the outcomes.
Problem sizes are the calibrated defaults from the workload classes;
tests pass smaller sizes through the driver arguments.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)


from repro.exec.jobs import SimJob, job_key, make_job
from repro.exec.pool import JobRunner
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.stats import RunStats
from repro.workloads.aq import AdaptiveQuadrature
from repro.workloads.base import Workload
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.smgrid import StaticMultigrid
from repro.workloads.tsp import TSP
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark

#: Alewife's clock (Section 3.1), used to convert cycles to seconds.
CLOCK_HZ = 33_000_000

#: The protocols shown in the application figures (Figure 4 uses the
#: ,ACK variant for the one-pointer protocol).
FIGURE4_PROTOCOLS: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH2SNB",
    "DirnH5SNB",
    "DirnHNBS-",
)

#: The protocols of the WORKER study (Figure 2).
FIGURE2_PROTOCOLS: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH1SNB,LACK",
    "DirnH1SNB",
    "DirnH2SNB",
    "DirnH3SNB",
    "DirnH4SNB",
    "DirnH5SNB",
)

WorkloadFactory = Callable[[], Workload]

#: The six applications of Section 6, with calibrated 64-node sizes.
APPLICATIONS: "OrderedDict[str, WorkloadFactory]" = OrderedDict(
    (
        ("tsp", TSP),
        ("aq", AdaptiveQuadrature),
        ("smgrid", StaticMultigrid),
        ("evolve", Evolve),
        ("mp3d", MP3D),
        ("water", Water),
    )
)


def run_one(
    workload: Workload,
    protocol: str,
    n_nodes: Optional[int] = None,
    victim_cache: Optional[bool] = None,
    perfect_ifetch: Optional[bool] = None,
    software: str = "flexible",
    track_worker_sets: bool = False,
    params: Optional[MachineParams] = None,
) -> RunStats:
    """Run one workload on a fresh machine and return its statistics.

    Configure the machine either with an explicit ``params`` or with the
    shorthand trio ``n_nodes`` (default 64) / ``victim_cache`` (default
    True) / ``perfect_ifetch`` (default False) — not both.  Passing
    ``params`` together with any of the shorthands raises
    :class:`ValueError`: the shorthands used to be silently ignored,
    which made ``run_one(w, p, n_nodes=16, params=my_params)`` run on
    ``my_params.n_nodes`` nodes without a whisper.
    """
    if params is not None:
        conflicting = [
            name
            for name, value in (
                ("n_nodes", n_nodes),
                ("victim_cache", victim_cache),
                ("perfect_ifetch", perfect_ifetch),
            )
            if value is not None
        ]
        if conflicting:
            raise ValueError(
                f"run_one() got both params= and "
                f"{', '.join(conflicting)}; pass machine configuration "
                f"one way or the other"
            )
    else:
        params = MachineParams(
            n_nodes=64 if n_nodes is None else n_nodes,
            victim_cache_enabled=(True if victim_cache is None
                                  else victim_cache),
            perfect_ifetch=bool(perfect_ifetch),
        )
    machine = Machine(params, protocol=protocol, software=software,
                      track_worker_sets=track_worker_sets)
    return machine.run(workload)


def _run_jobs(plan: Sequence[SimJob],
              runner: Optional[JobRunner]) -> Dict[str, RunStats]:
    """Execute a driver's plan on ``runner`` (serial in-process when
    the caller did not supply one)."""
    if runner is None:
        runner = JobRunner(jobs=1)
    return runner.run(plan)


def protocol_sweep(
    factory: WorkloadFactory,
    protocols: Sequence[str],
    n_nodes: int = 64,
    victim_cache: bool = True,
    perfect_ifetch: bool = False,
    runner: Optional[JobRunner] = None,
) -> "OrderedDict[str, RunStats]":
    """Run the same workload configuration across several protocols."""
    jobs = [
        make_job(factory, protocol=protocol, n_nodes=n_nodes,
                 victim_cache=victim_cache, perfect_ifetch=perfect_ifetch)
        for protocol in protocols
    ]
    results = _run_jobs(jobs, runner)
    return OrderedDict(
        (protocol, results[job_key(job)])
        for protocol, job in zip(protocols, jobs)
    )


# ----------------------------------------------------------------------
# Table 1: software handler latencies, C vs assembly
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Table1Row:
    readers: int
    c_read: float
    asm_read: float
    c_write: float
    asm_write: float


def _worker_job(size: int, protocol: str, n_nodes: int, iterations: int,
                software: str = "flexible") -> SimJob:
    """A WORKER run as the Section 4/5 studies configure it (no victim
    cache, so directory behaviour is isolated)."""
    return make_job(
        WorkerBenchmark,
        {"worker_set_size": size, "iterations": iterations},
        protocol=protocol, n_nodes=n_nodes, victim_cache=False,
        software=software,
    )


def table1_plan(
    readers: Sequence[int] = (8, 12, 16),
    n_nodes: int = 16,
    iterations: int = 3,
) -> List[SimJob]:
    """Jobs for Table 1: WORKER under both software implementations,
    one pair per reader count."""
    return [
        _worker_job(r, "DirnH5SNB", n_nodes, iterations, software)
        for r in readers
        for software in ("flexible", "optimized")
    ]


def table1_handler_latencies(
    readers: Sequence[int] = (8, 12, 16),
    n_nodes: int = 16,
    iterations: int = 3,
    runner: Optional[JobRunner] = None,
) -> List[Table1Row]:
    """Average DirnH5SNB handler latencies measured from WORKER runs."""
    results = _run_jobs(table1_plan(readers, n_nodes, iterations), runner)
    rows = []
    for r in readers:
        means: Dict[Tuple[str, str], float] = {}
        for software in ("flexible", "optimized"):
            stats = results[job_key(
                _worker_job(r, "DirnH5SNB", n_nodes, iterations, software))]
            means[("read", software)] = stats.mean_handler_latency(
                "read", software)
            means[("write", software)] = stats.mean_handler_latency(
                "write", software)
        rows.append(Table1Row(
            readers=r,
            c_read=means[("read", "flexible")],
            asm_read=means[("read", "optimized")],
            c_write=means[("write", "flexible")],
            asm_write=means[("write", "optimized")],
        ))
    return rows


# ----------------------------------------------------------------------
# Table 2: cycle breakdown of median handlers (8 readers, 1 writer)
# ----------------------------------------------------------------------

def table2_plan(n_nodes: int = 16, readers: int = 8,
                iterations: int = 3) -> List[SimJob]:
    """Jobs for Table 2 (shared with Table 1's when sizes align)."""
    return [
        _worker_job(readers, "DirnH5SNB", n_nodes, iterations, software)
        for software in ("flexible", "optimized")
    ]


def table2_breakdowns(n_nodes: int = 16, readers: int = 8,
                      iterations: int = 3,
                      runner: Optional[JobRunner] = None,
                      ) -> Dict[Tuple[str, str], Dict[str, int]]:
    """Median read/write handler activity breakdowns for both software
    implementations, keyed by (request, implementation).

    Shares its WORKER runs with Table 1 when both drivers use the same
    runner (the specs coalesce by job key).
    """
    results = _run_jobs(table2_plan(n_nodes, readers, iterations), runner)
    out: Dict[Tuple[str, str], Dict[str, int]] = {}
    for software in ("flexible", "optimized"):
        stats = results[job_key(
            _worker_job(readers, "DirnH5SNB", n_nodes, iterations,
                        software))]
        for request in ("read", "write"):
            sample = stats.median_handler_sample(request, software)
            if sample is not None:
                out[(request, software)] = dict(sample.breakdown)
    return out


# ----------------------------------------------------------------------
# Table 3: application characteristics
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Table3Row:
    name: str
    language: str
    size: str
    sequential_seconds: float


#: Source language of each application in the paper.
APP_LANGUAGES = {
    "tsp": "Mul-T",
    "aq": "Semi-C",
    "smgrid": "Mul-T",
    "evolve": "Mul-T",
    "mp3d": "C",
    "water": "C",
}


def table3_plan(n_nodes: int = 64) -> List[SimJob]:
    """Jobs for Table 3: every application on the full-map machine."""
    return [
        make_job(factory, protocol="DirnHNBS-", n_nodes=n_nodes)
        for factory in APPLICATIONS.values()
    ]


def table3_applications(
    n_nodes: int = 64,
    runner: Optional[JobRunner] = None,
) -> List[Table3Row]:
    """Application characteristics with measured sequential times."""
    results = _run_jobs(table3_plan(n_nodes), runner)
    rows = []
    for name, factory in APPLICATIONS.items():
        stats = results[job_key(
            make_job(factory, protocol="DirnHNBS-", n_nodes=n_nodes))]
        size = _workload_size(factory())
        rows.append(Table3Row(
            name=name,
            language=APP_LANGUAGES[name],
            size=size,
            sequential_seconds=stats.sequential_cycles / CLOCK_HZ,
        ))
    return rows


def _workload_size(workload: Workload) -> str:
    if isinstance(workload, TSP):
        return f"{workload.n_cities} city tour"
    if isinstance(workload, AdaptiveQuadrature):
        return f"tol {workload.tolerance}"
    if isinstance(workload, StaticMultigrid):
        return f"{workload.n + 1} x {workload.n + 1}"
    if isinstance(workload, Evolve):
        return f"{workload.dimensions} dimensions"
    if isinstance(workload, MP3D):
        return f"{workload.n_particles} particles"
    if isinstance(workload, Water):
        return f"{workload.n_molecules} molecules"
    return "-"


# ----------------------------------------------------------------------
# Figure 2: WORKER run-time ratio to full-map vs worker-set size
# ----------------------------------------------------------------------

def fig2_plan(
    sizes: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    protocols: Sequence[str] = FIGURE2_PROTOCOLS,
    n_nodes: int = 16,
    iterations: int = 4,
) -> List[SimJob]:
    """Jobs for Figure 2: the full-map baseline plus every protocol,
    per worker-set size."""
    jobs = []
    for size in sizes:
        jobs.append(_worker_job(size, "DirnHNBS-", n_nodes, iterations))
        for protocol in protocols:
            jobs.append(_worker_job(size, protocol, n_nodes, iterations))
    return jobs


def fig2_worker_ratios(
    sizes: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    protocols: Sequence[str] = FIGURE2_PROTOCOLS,
    n_nodes: int = 16,
    iterations: int = 4,
    runner: Optional[JobRunner] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Run-time of each protocol normalised to full-map, per worker-set
    size (the paper's Figure 2 curves)."""
    results = _run_jobs(fig2_plan(sizes, protocols, n_nodes, iterations),
                        runner)
    curves: Dict[str, List[Tuple[int, float]]] = {p: [] for p in protocols}
    for size in sizes:
        base = results[job_key(
            _worker_job(size, "DirnHNBS-", n_nodes, iterations))].run_cycles
        for protocol in protocols:
            cycles = results[job_key(
                _worker_job(size, protocol, n_nodes, iterations))].run_cycles
            curves[protocol].append((size, cycles / base))
    return curves


# ----------------------------------------------------------------------
# Figure 3: TSP detailed analysis (base / perfect ifetch / victim cache)
# ----------------------------------------------------------------------

#: The three machine configurations of Figure 3.
_FIG3_CONFIGS: Tuple[Tuple[str, Dict[str, bool]], ...] = (
    ("base", dict(victim_cache=False, perfect_ifetch=False)),
    ("perfect ifetch", dict(victim_cache=False, perfect_ifetch=True)),
    ("victim cache", dict(victim_cache=True, perfect_ifetch=False)),
)


def fig3_plan(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
) -> List[SimJob]:
    """Jobs for Figure 3: TSP under the three machine configurations."""
    return [
        make_job(TSP, protocol=protocol, n_nodes=n_nodes, **kwargs)
        for _label, kwargs in _FIG3_CONFIGS
        for protocol in protocols
    ]


def fig3_tsp_detail(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
    runner: Optional[JobRunner] = None,
) -> Dict[str, "OrderedDict[str, float]"]:
    """TSP speedups under the three Figure 3 configurations."""
    results = _run_jobs(fig3_plan(protocols, n_nodes), runner)
    out: Dict[str, "OrderedDict[str, float]"] = {}
    for label, kwargs in _FIG3_CONFIGS:
        column: "OrderedDict[str, float]" = OrderedDict()
        for protocol in protocols:
            stats = results[job_key(
                make_job(TSP, protocol=protocol, n_nodes=n_nodes,
                         **kwargs))]
            column[protocol] = stats.speedup
        out[label] = column
    return out


# ----------------------------------------------------------------------
# Figure 4: application speedups across the spectrum
# ----------------------------------------------------------------------

def fig4_plan(
    apps: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
) -> List[SimJob]:
    """Jobs for Figure 4: each chosen application across the spectrum."""
    chosen = list(APPLICATIONS) if apps is None else list(apps)
    return [
        make_job(APPLICATIONS[name], protocol=protocol, n_nodes=n_nodes)
        for name in chosen
        for protocol in protocols
    ]


def fig4_application_speedups(
    apps: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
    runner: Optional[JobRunner] = None,
) -> "OrderedDict[str, OrderedDict[str, float]]":
    """Speedup of each application per protocol (victim caching on, as
    the paper does for everything after the TSP study)."""
    results = _run_jobs(fig4_plan(apps, protocols, n_nodes), runner)
    chosen = list(APPLICATIONS) if apps is None else list(apps)
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for name in chosen:
        column: "OrderedDict[str, float]" = OrderedDict()
        for protocol in protocols:
            stats = results[job_key(
                make_job(APPLICATIONS[name], protocol=protocol,
                         n_nodes=n_nodes))]
            column[protocol] = stats.speedup
        out[name] = column
    return out


# ----------------------------------------------------------------------
# Figure 5: TSP on 256 nodes
# ----------------------------------------------------------------------

def fig5_plan(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 256,
) -> List[SimJob]:
    """Jobs for Figure 5: the scaled 256-node TSP per protocol."""
    return [
        make_job(TSP, {"n_cities": 13, "prefix_depth": 4},
                 protocol=protocol, n_nodes=n_nodes)
        for protocol in protocols
    ]


def fig5_tsp_256(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 256,
    runner: Optional[JobRunner] = None,
) -> "OrderedDict[str, float]":
    """TSP speedups on a 256-node machine with victim caching.

    The paper runs the *same* problem on more nodes; our scaled problem
    grows one city (13 vs the 64-node runs' 12) so that 256 nodes have
    enough subtrees each for the start-up transient to amortise — the
    paper's billion-cycle run gets that for free.
    """
    jobs = fig5_plan(protocols, n_nodes)
    results = _run_jobs(jobs, runner)
    out: "OrderedDict[str, float]" = OrderedDict()
    for protocol, job in zip(protocols, jobs):
        out[protocol] = results[job_key(job)].speedup
    return out


# ----------------------------------------------------------------------
# Figure 6: EVOLVE worker-set histogram
# ----------------------------------------------------------------------

def fig6_plan(n_nodes: int = 64) -> List[SimJob]:
    """The single worker-set-tracking EVOLVE job of Figure 6."""
    return [
        make_job(Evolve, protocol="DirnHNBS-", n_nodes=n_nodes,
                 track_worker_sets=True)
    ]


def fig6_evolve_worker_sets(
    n_nodes: int = 64,
    runner: Optional[JobRunner] = None,
) -> Mapping[int, int]:
    """Histogram of worker-set sizes at the end of an EVOLVE run."""
    (job,) = fig6_plan(n_nodes)
    stats = _run_jobs([job], runner)[job_key(job)]
    assert stats.worker_set_histogram is not None
    return stats.worker_set_histogram


# ----------------------------------------------------------------------
# Convenience: relative performance summary (the 71%-100% headline)
# ----------------------------------------------------------------------

def relative_performance(
    speedups: Mapping[str, float],
    reference: str = "DirnHNBS-",
) -> Dict[str, float]:
    """Normalise a protocol->speedup map to the full-map entry."""
    base = speedups[reference]
    if base == 0:
        return {p: 0.0 for p in speedups}
    return {p: s / base for p, s in speedups.items()}
