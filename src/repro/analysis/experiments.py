"""Experiment drivers: one function per table/figure of the paper.

Each driver builds machines, runs workloads across the protocol spectrum,
and returns plain data structures; the ``benchmarks/`` suite formats them
into the paper's tables and figures, and ``EXPERIMENTS.md`` records the
outcomes.  Problem sizes are the calibrated defaults from the workload
classes; tests pass smaller sizes through the driver arguments.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.stats import RunStats
from repro.workloads.aq import AdaptiveQuadrature
from repro.workloads.base import Workload
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.smgrid import StaticMultigrid
from repro.workloads.tsp import TSP
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark

#: Alewife's clock (Section 3.1), used to convert cycles to seconds.
CLOCK_HZ = 33_000_000

#: The protocols shown in the application figures (Figure 4 uses the
#: ,ACK variant for the one-pointer protocol).
FIGURE4_PROTOCOLS: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH2SNB",
    "DirnH5SNB",
    "DirnHNBS-",
)

#: The protocols of the WORKER study (Figure 2).
FIGURE2_PROTOCOLS: Tuple[str, ...] = (
    "DirnH0SNB,ACK",
    "DirnH1SNB,ACK",
    "DirnH1SNB,LACK",
    "DirnH1SNB",
    "DirnH2SNB",
    "DirnH3SNB",
    "DirnH4SNB",
    "DirnH5SNB",
)

WorkloadFactory = Callable[[], Workload]

#: The six applications of Section 6, with calibrated 64-node sizes.
APPLICATIONS: "OrderedDict[str, WorkloadFactory]" = OrderedDict(
    (
        ("tsp", TSP),
        ("aq", AdaptiveQuadrature),
        ("smgrid", StaticMultigrid),
        ("evolve", Evolve),
        ("mp3d", MP3D),
        ("water", Water),
    )
)


def run_one(
    workload: Workload,
    protocol: str,
    n_nodes: int = 64,
    victim_cache: bool = True,
    perfect_ifetch: bool = False,
    software: str = "flexible",
    track_worker_sets: bool = False,
    params: Optional[MachineParams] = None,
) -> RunStats:
    """Run one workload on a fresh machine and return its statistics."""
    if params is None:
        params = MachineParams(
            n_nodes=n_nodes,
            victim_cache_enabled=victim_cache,
            perfect_ifetch=perfect_ifetch,
        )
    machine = Machine(params, protocol=protocol, software=software,
                      track_worker_sets=track_worker_sets)
    return machine.run(workload)


def protocol_sweep(
    factory: WorkloadFactory,
    protocols: Sequence[str],
    n_nodes: int = 64,
    victim_cache: bool = True,
    perfect_ifetch: bool = False,
) -> "OrderedDict[str, RunStats]":
    """Run the same workload configuration across several protocols."""
    results: "OrderedDict[str, RunStats]" = OrderedDict()
    for protocol in protocols:
        results[protocol] = run_one(
            factory(), protocol, n_nodes=n_nodes,
            victim_cache=victim_cache, perfect_ifetch=perfect_ifetch,
        )
    return results


# ----------------------------------------------------------------------
# Table 1: software handler latencies, C vs assembly
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Table1Row:
    readers: int
    c_read: float
    asm_read: float
    c_write: float
    asm_write: float


def table1_handler_latencies(
    readers: Sequence[int] = (8, 12, 16),
    n_nodes: int = 16,
    iterations: int = 3,
) -> List[Table1Row]:
    """Average DirnH5SNB handler latencies measured from WORKER runs."""
    rows = []
    for r in readers:
        means: Dict[Tuple[str, str], float] = {}
        for software in ("flexible", "optimized"):
            stats = run_one(
                WorkerBenchmark(worker_set_size=r, iterations=iterations),
                "DirnH5SNB", n_nodes=n_nodes, victim_cache=False,
                software=software,
            )
            means[("read", software)] = stats.mean_handler_latency(
                "read", software)
            means[("write", software)] = stats.mean_handler_latency(
                "write", software)
        rows.append(Table1Row(
            readers=r,
            c_read=means[("read", "flexible")],
            asm_read=means[("read", "optimized")],
            c_write=means[("write", "flexible")],
            asm_write=means[("write", "optimized")],
        ))
    return rows


# ----------------------------------------------------------------------
# Table 2: cycle breakdown of median handlers (8 readers, 1 writer)
# ----------------------------------------------------------------------

def table2_breakdowns(n_nodes: int = 16, readers: int = 8,
                      iterations: int = 3) -> Dict[Tuple[str, str],
                                                   Dict[str, int]]:
    """Median read/write handler activity breakdowns for both software
    implementations, keyed by (request, implementation)."""
    out: Dict[Tuple[str, str], Dict[str, int]] = {}
    for software in ("flexible", "optimized"):
        stats = run_one(
            WorkerBenchmark(worker_set_size=readers, iterations=iterations),
            "DirnH5SNB", n_nodes=n_nodes, victim_cache=False,
            software=software,
        )
        for request in ("read", "write"):
            sample = stats.median_handler_sample(request, software)
            if sample is not None:
                out[(request, software)] = dict(sample.breakdown)
    return out


# ----------------------------------------------------------------------
# Table 3: application characteristics
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Table3Row:
    name: str
    language: str
    size: str
    sequential_seconds: float


#: Source language of each application in the paper.
APP_LANGUAGES = {
    "tsp": "Mul-T",
    "aq": "Semi-C",
    "smgrid": "Mul-T",
    "evolve": "Mul-T",
    "mp3d": "C",
    "water": "C",
}


def table3_applications(n_nodes: int = 64) -> List[Table3Row]:
    """Application characteristics with measured sequential times."""
    rows = []
    for name, factory in APPLICATIONS.items():
        workload = factory()
        stats = run_one(workload, "DirnHNBS-", n_nodes=n_nodes)
        size = _workload_size(workload)
        rows.append(Table3Row(
            name=name,
            language=APP_LANGUAGES[name],
            size=size,
            sequential_seconds=stats.sequential_cycles / CLOCK_HZ,
        ))
    return rows


def _workload_size(workload: Workload) -> str:
    if isinstance(workload, TSP):
        return f"{workload.n_cities} city tour"
    if isinstance(workload, AdaptiveQuadrature):
        return f"tol {workload.tolerance}"
    if isinstance(workload, StaticMultigrid):
        return f"{workload.n + 1} x {workload.n + 1}"
    if isinstance(workload, Evolve):
        return f"{workload.dimensions} dimensions"
    if isinstance(workload, MP3D):
        return f"{workload.n_particles} particles"
    if isinstance(workload, Water):
        return f"{workload.n_molecules} molecules"
    return "-"


# ----------------------------------------------------------------------
# Figure 2: WORKER run-time ratio to full-map vs worker-set size
# ----------------------------------------------------------------------

def fig2_worker_ratios(
    sizes: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    protocols: Sequence[str] = FIGURE2_PROTOCOLS,
    n_nodes: int = 16,
    iterations: int = 4,
) -> Dict[str, List[Tuple[int, float]]]:
    """Run-time of each protocol normalised to full-map, per worker-set
    size (the paper's Figure 2 curves)."""
    curves: Dict[str, List[Tuple[int, float]]] = {p: [] for p in protocols}
    for size in sizes:
        base = run_one(
            WorkerBenchmark(worker_set_size=size, iterations=iterations),
            "DirnHNBS-", n_nodes=n_nodes, victim_cache=False,
        ).run_cycles
        for protocol in protocols:
            cycles = run_one(
                WorkerBenchmark(worker_set_size=size, iterations=iterations),
                protocol, n_nodes=n_nodes, victim_cache=False,
            ).run_cycles
            curves[protocol].append((size, cycles / base))
    return curves


# ----------------------------------------------------------------------
# Figure 3: TSP detailed analysis (base / perfect ifetch / victim cache)
# ----------------------------------------------------------------------

def fig3_tsp_detail(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
) -> Dict[str, "OrderedDict[str, float]"]:
    """TSP speedups under the three Figure 3 configurations."""
    out: Dict[str, "OrderedDict[str, float]"] = {}
    configs = (
        ("base", dict(victim_cache=False, perfect_ifetch=False)),
        ("perfect ifetch", dict(victim_cache=False, perfect_ifetch=True)),
        ("victim cache", dict(victim_cache=True, perfect_ifetch=False)),
    )
    for label, kwargs in configs:
        column: "OrderedDict[str, float]" = OrderedDict()
        for protocol in protocols:
            stats = run_one(TSP(), protocol, n_nodes=n_nodes, **kwargs)
            column[protocol] = stats.speedup
        out[label] = column
    return out


# ----------------------------------------------------------------------
# Figure 4: application speedups across the spectrum
# ----------------------------------------------------------------------

def fig4_application_speedups(
    apps: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 64,
) -> "OrderedDict[str, OrderedDict[str, float]]":
    """Speedup of each application per protocol (victim caching on, as
    the paper does for everything after the TSP study)."""
    chosen = list(APPLICATIONS) if apps is None else list(apps)
    out: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    for name in chosen:
        factory = APPLICATIONS[name]
        column: "OrderedDict[str, float]" = OrderedDict()
        for protocol in protocols:
            stats = run_one(factory(), protocol, n_nodes=n_nodes)
            column[protocol] = stats.speedup
        out[name] = column
    return out


# ----------------------------------------------------------------------
# Figure 5: TSP on 256 nodes
# ----------------------------------------------------------------------

def fig5_tsp_256(
    protocols: Sequence[str] = FIGURE4_PROTOCOLS,
    n_nodes: int = 256,
) -> "OrderedDict[str, float]":
    """TSP speedups on a 256-node machine with victim caching.

    The paper runs the *same* problem on more nodes; our scaled problem
    grows one city (13 vs the 64-node runs' 12) so that 256 nodes have
    enough subtrees each for the start-up transient to amortise — the
    paper's billion-cycle run gets that for free.
    """
    out: "OrderedDict[str, float]" = OrderedDict()
    for protocol in protocols:
        stats = run_one(TSP(n_cities=13, prefix_depth=4), protocol,
                        n_nodes=n_nodes)
        out[protocol] = stats.speedup
    return out


# ----------------------------------------------------------------------
# Figure 6: EVOLVE worker-set histogram
# ----------------------------------------------------------------------

def fig6_evolve_worker_sets(n_nodes: int = 64) -> Mapping[int, int]:
    """Histogram of worker-set sizes at the end of an EVOLVE run."""
    stats = run_one(Evolve(), "DirnHNBS-", n_nodes=n_nodes,
                    track_worker_sets=True)
    assert stats.worker_set_histogram is not None
    return stats.worker_set_histogram


# ----------------------------------------------------------------------
# Convenience: relative performance summary (the 71%-100% headline)
# ----------------------------------------------------------------------

def relative_performance(
    speedups: Mapping[str, float],
    reference: str = "DirnHNBS-",
) -> Dict[str, float]:
    """Normalise a protocol->speedup map to the full-map entry."""
    base = speedups[reference]
    if base == 0:
        return {p: 0.0 for p in speedups}
    return {p: s / base for p, s in speedups.items()}
