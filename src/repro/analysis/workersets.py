"""Worker-set analysis helpers (paper Section 5 / Figure 6).

A *worker set* is the set of nodes that access a unit of data.  The
machine tracks per-block worker sets when ``track_worker_sets`` is on;
these helpers summarise the result.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple


def histogram_summary(histogram: Mapping[int, int]) -> Dict[str, float]:
    """Summary statistics of a worker-set-size histogram."""
    total_blocks = sum(histogram.values())
    if total_blocks == 0:
        return {
            "blocks": 0, "max_size": 0, "mean_size": 0.0,
            "small_fraction": 1.0, "large_sets": 0,
        }
    weighted = sum(size * count for size, count in histogram.items())
    small = sum(count for size, count in histogram.items() if size <= 4)
    large = sum(count for size, count in histogram.items() if size > 5)
    return {
        "blocks": total_blocks,
        "max_size": max(histogram),
        "mean_size": weighted / total_blocks,
        "small_fraction": small / total_blocks,
        "large_sets": large,
    }


def decay_slope(histogram: Mapping[int, int]) -> float:
    """Least-squares slope of log10(count) against worker-set size.

    Figure 6 of the paper is near-linear on a log scale; a clearly
    negative slope is the property tests assert.
    """
    points: Tuple[Tuple[int, float], ...] = tuple(
        (size, math.log10(count))
        for size, count in sorted(histogram.items())
        if count > 0
    )
    if len(points) < 2:
        return 0.0
    n = len(points)
    mean_x = sum(x for x, _y in points) / n
    mean_y = sum(y for _x, y in points) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    var = sum((x - mean_x) ** 2 for x, _y in points)
    return cov / var if var else 0.0


def hardware_coverage(histogram: Mapping[int, int], pointers: int) -> float:
    """Fraction of blocks whose worker set fits in ``pointers`` hardware
    pointers — the fraction a limited directory handles without software.
    """
    total = sum(histogram.values())
    if total == 0:
        return 1.0
    covered = sum(count for size, count in histogram.items()
                  if size <= pointers)
    return covered / total
