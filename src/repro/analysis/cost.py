"""Hardware cost analysis of the protocol spectrum.

The paper's central tradeoff is performance *versus cost*: every
hardware directory pointer costs storage on every block of shared memory
in the machine.  A full-map directory needs one bit per node per block —
cost that grows with machine size — while a software-extended directory
pays a constant number of pointer-widths per block plus DRAM for the
software extension only where worker sets actually overflow.

This module quantifies that: directory bits per block, directory storage
as a fraction of shared memory, and cost/performance summaries used by
``examples/protocol_spectrum.py`` and the analysis tests.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.core.spec import ProtocolSpec, spec_of
from repro.machine.params import MachineParams

#: bits of directory state besides the pointers themselves (entry state,
#: the acknowledgement counter re-using a pointer width, flags)
ENTRY_OVERHEAD_BITS = 4


def pointer_width(n_nodes: int) -> int:
    """Bits needed to name a node."""
    return max((n_nodes - 1).bit_length(), 1)


def directory_bits_per_block(protocol: "ProtocolSpec | str",
                             n_nodes: int) -> int:
    """Hardware directory bits each memory block pays."""
    spec = spec_of(protocol)
    if spec.full_map:
        # One presence bit per node (the paper notes the efficient
        # one-bit-per-pointer implementation) plus entry state.
        return n_nodes + ENTRY_OVERHEAD_BITS
    if spec.is_software_only:
        return 1  # the remote-access bit
    bits = spec.hw_pointers * pointer_width(n_nodes) + ENTRY_OVERHEAD_BITS
    if spec.local_bit:
        bits += 1
    return bits


def directory_overhead(protocol: "ProtocolSpec | str",
                       params: MachineParams) -> float:
    """Directory storage as a fraction of the shared memory it covers."""
    block_bits = params.block_bytes * 8
    return directory_bits_per_block(protocol, params.n_nodes) / block_bits


def extension_dram_bytes(live_chunks: int, small_records: int,
                         n_nodes: int, chunk_pointers: int = 8) -> int:
    """DRAM consumed by the software directory extension.

    ``live_chunks``/``small_records`` come from
    :class:`~repro.core.software.extdir.ExtendedDirectory` accounting.
    """
    ptr_bytes = -(-pointer_width(n_nodes) // 8)
    chunk_bytes = chunk_pointers * ptr_bytes + 4  # pointers + link word
    small_bytes = 4 * ptr_bytes
    return live_chunks * chunk_bytes + small_records * small_bytes


@dataclasses.dataclass(frozen=True)
class CostPerformancePoint:
    """One protocol's position in the cost/performance plane."""

    protocol: str
    bits_per_block: int
    overhead: float  # directory bits / memory bits
    speedup: float

    @property
    def efficiency(self) -> float:
        """Speedup per percent of directory overhead (higher is better;
        infinite for the 1-bit software-only directory rounds to a large
        finite value)."""
        return self.speedup / max(self.overhead, 1e-6)


def cost_performance_points(
    speedups: Mapping[str, float],
    params: MachineParams,
) -> List[CostPerformancePoint]:
    """Combine measured speedups with hardware costs."""
    return [
        CostPerformancePoint(
            protocol=protocol,
            bits_per_block=directory_bits_per_block(protocol,
                                                    params.n_nodes),
            overhead=directory_overhead(protocol, params),
            speedup=speedup,
        )
        for protocol, speedup in speedups.items()
    ]


def pareto_frontier(
    points: Iterable[CostPerformancePoint],
) -> List[CostPerformancePoint]:
    """Points not dominated in (lower cost, higher speedup)."""
    ordered = sorted(points, key=lambda p: (p.bits_per_block, -p.speedup))
    frontier: List[CostPerformancePoint] = []
    best = float("-inf")
    for point in ordered:
        if point.speedup > best:
            frontier.append(point)
            best = point.speedup
    return frontier


def full_map_scaling(n_nodes_list: Sequence[int],
                     hw_pointers: int = 5) -> List[Tuple[int, int, int]]:
    """(nodes, full-map bits/block, limited bits/block) — the scaling
    argument for software extension: full-map cost grows linearly with
    machine size while the limited directory grows logarithmically."""
    rows = []
    for n in n_nodes_list:
        full = directory_bits_per_block("DirnHNBS-", n)
        limited = directory_bits_per_block(
            ProtocolSpec(hw_pointers=hw_pointers), n)
        rows.append((n, full, limited))
    return rows
