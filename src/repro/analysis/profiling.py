"""Profile, detect, and optimize (paper Section 7).

During development, enhanced protocol software can run in a *profiling
mode* that detects widely-shared read-only data; the production run then
selects a better coherence type for it.  This module implements that
workflow:

1. :class:`AccessProfiler` records, per block, which nodes received read
   and write copies during a profiling run;
2. :func:`read_only_blocks` picks the blocks that are widely read but
   never written after initialisation — the data class the paper calls
   out ("widely-shared, read-only data");
3. :func:`apply_read_only_protocol` configures those blocks (on a fresh
   production machine) with a broadcast protocol whose reads never trap.

``examples/annotated_protocols.py`` and the enhancement benchmark show
the payoff on EVOLVE's fitness table.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Iterable, List, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


@dataclasses.dataclass
class BlockProfile:
    """Observed sharing behaviour of one memory block."""

    readers: Set[int] = dataclasses.field(default_factory=set)
    writers: Set[int] = dataclasses.field(default_factory=set)
    read_grants: int = 0
    write_grants: int = 0

    @property
    def worker_set_size(self) -> int:
        return len(self.readers | self.writers)


class AccessProfiler:
    """Records per-block read/write grants during a profiling run.

    Attach before running::

        machine.profiler = AccessProfiler()
    """

    def __init__(self) -> None:
        self.blocks: Dict[int, BlockProfile] = {}

    def record(self, block: int, node: int, write: bool) -> None:
        profile = self.blocks.get(block)
        if profile is None:
            profile = BlockProfile()
            self.blocks[block] = profile
        if write:
            profile.writers.add(node)
            profile.write_grants += 1
        else:
            profile.readers.add(node)
            profile.read_grants += 1

    def __len__(self) -> int:
        return len(self.blocks)


def read_only_blocks(profiler: AccessProfiler, min_readers: int = 6,
                     max_writes: int = 1) -> List[int]:
    """Blocks that are widely read but (essentially) never written.

    ``max_writes`` tolerates a single initialising write.  The reader
    threshold selects data wide enough to overflow a limited directory —
    the blocks whose read-overflow traps the optimization eliminates.
    """
    out = []
    for block, profile in profiler.blocks.items():
        if (len(profile.readers) >= min_readers
                and profile.write_grants <= max_writes):
            out.append(block)
    return sorted(out)


def apply_read_only_protocol(machine: "Machine", blocks: Iterable[int],
                             protocol: str = "Dir1H1SB,LACK") -> int:
    """Configure the profiled read-only blocks on a production machine.

    The default choice is the broadcast protocol: its reads never trap
    (Section 2.5), and for data that is never written the broadcast
    penalty is never paid.  Returns the number of blocks configured.
    """
    count = 0
    for block in blocks:
        machine.configure_block(block << machine.params.block_shift,
                                protocol)
        count += 1
    return count


def profile_and_optimize(make_workload, make_machine,
                         min_readers: int = 6) -> "Machine":
    """End-to-end helper: profile one run, configure a fresh machine.

    ``make_workload`` and ``make_machine`` are zero-argument factories.
    The profiling run uses its own machine (machines are single-use);
    the returned machine is ready to run the production workload.
    """
    profiling_machine = make_machine()
    profiling_machine.profiler = AccessProfiler()
    profiling_machine.run(make_workload())

    production_machine = make_machine()
    # The production allocation layout matches the profiling run because
    # workload setup is deterministic; run setup first so the blocks to
    # configure exist... configuration must precede first *reference*,
    # and setup only allocates, so configuring now is safe.
    candidates = read_only_blocks(profiling_machine.profiler,
                                  min_readers=min_readers)
    apply_read_only_protocol(production_machine, candidates)
    return production_machine
