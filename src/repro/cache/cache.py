"""Processor cache: direct-mapped combined I/D cache plus victim cache.

Alewife's cache is a 64 Kbyte direct-mapped combined instruction/data
cache (Section 3.1).  Because it is direct-mapped and combined, hot data
can conflict with hot code — the instruction/data thrashing the TSP case
study exposes (Section 6).  Alewife's remedy is a small victim cache
(Jouppi) built from the transaction store; lines evicted from the main
array drop into a small fully-associative FIFO buffer and can be swapped
back on a subsequent miss.

The cache stores only coherence state per block (the simulator does not
track data values); hits/misses and evictions are what drive the protocol.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.types import CacheState


@dataclasses.dataclass
class Eviction:
    """A block that left the cache system entirely."""

    block: int
    state: CacheState

    @property
    def dirty(self) -> bool:
        return self.state is CacheState.READ_WRITE


class VictimCache:
    """Small fully-associative FIFO buffer of evicted lines."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._lines: "OrderedDict[int, CacheState]" = OrderedDict()
        self.hits = 0

    def __contains__(self, block: int) -> bool:
        return block in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def insert(self, block: int, state: CacheState) -> Optional[Eviction]:
        """Add a line; returns the line pushed out, if any."""
        evicted: Optional[Eviction] = None
        if self.entries == 0:
            return Eviction(block, state)
        if len(self._lines) >= self.entries and block not in self._lines:
            old_block, old_state = self._lines.popitem(last=False)
            evicted = Eviction(old_block, old_state)
        self._lines[block] = state
        return evicted

    def extract(self, block: int) -> Optional[CacheState]:
        """Remove and return the state of ``block`` if present."""
        return self._lines.pop(block, None)

    def state_of(self, block: int) -> Optional[CacheState]:
        return self._lines.get(block)

    def set_state(self, block: int, state: CacheState) -> None:
        if block not in self._lines:
            raise KeyError(block)
        self._lines[block] = state

    def blocks(self) -> List[int]:
        return list(self._lines)


class DirectMappedCache:
    """Direct-mapped cache with an optional victim cache behind it."""

    def __init__(self, n_sets: int, victim_entries: int = 0) -> None:
        if n_sets & (n_sets - 1) or n_sets <= 0:
            raise ValueError("n_sets must be a positive power of two")
        self.n_sets = n_sets
        self._mask = n_sets - 1
        # set index -> (block, state)
        self._sets: Dict[int, Tuple[int, CacheState]] = {}
        self.victim = VictimCache(victim_entries) if victim_entries else None

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------

    def set_of(self, block: int) -> int:
        return block & self._mask

    def probe(self, block: int) -> CacheState:
        """State of ``block`` without side effects (victim included)."""
        entry = self._sets.get(self.set_of(block))
        if entry is not None and entry[0] == block:
            return entry[1]
        if self.victim is not None:
            state = self.victim.state_of(block)
            if state is not None:
                return state
        return CacheState.INVALID

    def lookup(self, block: int) -> Tuple[CacheState, bool]:
        """Access ``block``; returns ``(state, from_victim)``.

        A victim-cache hit swaps the line back into the main array,
        pushing the conflicting occupant into the victim buffer (the
        swap is what makes a victim cache effective against ping-pong
        conflicts).
        """
        idx = self.set_of(block)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == block:
            return entry[1], False
        if self.victim is not None:
            state = self.victim.extract(block)
            if state is not None:
                self.victim.hits += 1
                if entry is not None:
                    # Swap: displaced main-array line drops into the victim
                    # buffer.  The victim just freed a slot, so this cannot
                    # push anything out.
                    self.victim.insert(entry[0], entry[1])
                self._sets[idx] = (block, state)
                return state, True
        return CacheState.INVALID, False

    def fill(self, block: int, state: CacheState) -> List[Eviction]:
        """Install ``block`` with ``state``; returns lines evicted
        entirely out of the cache system (candidates for write-back)."""
        idx = self.set_of(block)
        evictions: List[Eviction] = []
        if self.victim is not None and block in self.victim:
            # The line is being re-filled (e.g. upgraded); drop the stale
            # victim copy *before* pushing the displaced occupant, or a
            # full victim buffer would report a spurious eviction of the
            # very block being installed.
            self.victim.extract(block)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] != block:
            old_block, old_state = entry
            if self.victim is not None:
                pushed = self.victim.insert(old_block, old_state)
                if pushed is not None:
                    evictions.append(pushed)
            else:
                evictions.append(Eviction(old_block, old_state))
        self._sets[idx] = (block, state)
        return evictions

    # ------------------------------------------------------------------
    # Coherence actions from the protocol
    # ------------------------------------------------------------------

    def invalidate(self, block: int) -> CacheState:
        """Drop ``block``; returns its prior state."""
        idx = self.set_of(block)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == block:
            del self._sets[idx]
            return entry[1]
        if self.victim is not None:
            state = self.victim.extract(block)
            if state is not None:
                return state
        return CacheState.INVALID

    def downgrade(self, block: int) -> CacheState:
        """Demote ``block`` to READ_ONLY; returns its prior state."""
        idx = self.set_of(block)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == block:
            self._sets[idx] = (block, CacheState.READ_ONLY)
            return entry[1]
        if self.victim is not None:
            state = self.victim.state_of(block)
            if state is not None:
                self.victim.set_state(block, CacheState.READ_ONLY)
                return state
        return CacheState.INVALID

    def resident_blocks(self) -> List[int]:
        """All blocks currently cached (main array + victim)."""
        blocks = [blk for blk, _state in self._sets.values()]
        if self.victim is not None:
            blocks.extend(self.victim.blocks())
        return blocks
