"""Processor cache subsystem: direct-mapped main array + victim cache."""

from repro.cache.cache import DirectMappedCache, Eviction, VictimCache

__all__ = ["DirectMappedCache", "Eviction", "VictimCache"]
