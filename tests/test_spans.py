"""Tests for causal transaction tracing (repro.obs.spans).

Covers the txn-id thread through the probe points — assignment at miss
issue, propagation through protocol messages, directory transitions,
traps, and handler spans — plus trace reconstruction and the
determinism of ids across repeated runs.
"""

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.obs import SpanCollector, format_trace
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload, tiny_machine


def traced_run(n_nodes=9, protocol="DirnH2SNB", ops=None):
    machine = tiny_machine(n_nodes=n_nodes, protocol=protocol)
    collector = SpanCollector.attach(machine)
    if ops is None:
        a = machine.heap.alloc_block(0)
        b = machine.heap.alloc_block(1)
        ops = {
            1: [("read", a), ("compute", 200), ("write", a)],
            2: [("write", a), ("compute", 100), ("read", b)],
            3: [("read", b), ("read", a)],
        }
    stats = machine.run(ScriptWorkload(ops))
    return machine, stats, collector


def worker_run(protocol="DirnH2SNB"):
    machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
    collector = SpanCollector.attach(machine)
    stats = machine.run(WorkerBenchmark(worker_set_size=6, iterations=2))
    return machine, stats, collector


class TestTxnAssignment:
    def test_every_data_miss_opens_a_transaction(self):
        _machine, stats, collector = traced_run()
        misses = [s for s in collector.stalls
                  if s.kind in ("read", "write")]
        assert misses
        assert all(s.txn is not None for s in misses)
        # ids are unique per miss
        ids = [s.txn for s in misses]
        assert len(ids) == len(set(ids))

    def test_ids_are_node_striped(self):
        # Ids stride by n_nodes from node_id + 1: each node's sequence
        # depends only on its own history (shard-invariant), and the
        # allocating node is recoverable as (id - 1) % n_nodes.
        machine, _stats, collector = traced_run()
        n = machine.params.n_nodes
        per_node = {}
        for trace in collector.transactions():
            node = (trace.txn - 1) % n
            assert trace.stall is None or trace.stall.node == node
            per_node.setdefault(node, []).append(trace.txn)
        for node, ids in per_node.items():
            assert sorted(ids) == [i * n + node + 1
                                   for i in range(len(ids))]
            assert machine.next_txn(node) == len(ids) * n + node + 1

    def test_non_miss_stalls_are_untagged(self):
        _machine, _stats, collector = worker_run()
        for stall in collector.stalls:
            if stall.kind not in ("read", "write"):
                assert stall.txn is None

    def test_every_completed_trace_has_its_stall(self):
        _machine, _stats, collector = worker_run()
        assert len(collector) > 0
        for trace in collector.transactions():
            assert trace.stall is not None
            assert trace.stall.txn == trace.txn


class TestTxnPropagation:
    def test_messages_carry_the_id(self):
        _machine, _stats, collector = worker_run()
        traced = [t for t in collector.transactions() if t.messages]
        assert traced
        for trace in traced:
            for message in trace.messages:
                assert message.txn == trace.txn
                # every message of a miss flies within (a retry can
                # stretch past) its stall window's start
                assert message.sent_at >= trace.stall.start

    def test_request_and_grant_bracket_the_miss(self):
        _machine, _stats, collector = traced_run()
        for trace in collector.transactions():
            kinds = [m.kind for m in trace.messages]
            assert kinds, "a miss always sends a request"
            assert kinds[0] in ("rreq", "wreq")
            assert kinds[-1] in ("rdata", "wdata")

    def test_transitions_tagged_at_the_home(self):
        _machine, _stats, collector = traced_run()
        tagged = [t for t in collector.transactions() if t.transitions]
        assert tagged
        for trace in tagged:
            for tr in trace.transitions:
                assert tr.txn == trace.txn

    def test_overflow_miss_reaches_software(self):
        # DirnH1 with three sharers must trap; the handler spans the
        # trap posts must both carry the requester's txn.
        _machine, _stats, collector = worker_run(protocol="DirnH1SNB,ACK")
        with_handlers = [t for t in collector.transactions()
                         if t.handlers]
        assert with_handlers
        for trace in with_handlers:
            assert trace.traps, "handlers only run after a posted trap"
            for h in trace.handlers:
                assert h.txn == trace.txn
            for p in trace.traps:
                assert p.txn == trace.txn

    def test_retries_counted_from_busy_replies(self):
        _machine, _stats, collector = worker_run(protocol="DirnH1SNB,ACK")
        retried = [t for t in collector.transactions() if t.retries]
        total_busy = sum(
            sum(1 for m in t.messages if m.kind == "busy")
            for t in collector.transactions())
        assert sum(t.retries for t in retried) == total_busy


class TestDeterminism:
    def test_same_run_same_traces(self):
        _m1, _s1, c1 = worker_run()
        _m2, _s2, c2 = worker_run()
        assert len(c1) == len(c2)
        for t1, t2 in zip(c1.transactions(), c2.transactions()):
            assert t1.txn == t2.txn
            assert t1.stall == t2.stall
            assert t1.messages == t2.messages
            assert t1.handlers == t2.handlers
            assert t1.traps == t2.traps
            assert t1.transitions == t2.transitions

    def test_format_trace_is_stable(self):
        _m1, _s1, c1 = worker_run(protocol="DirnH1SNB,ACK")
        _m2, _s2, c2 = worker_run(protocol="DirnH1SNB,ACK")
        pick = min(3, len(c1))
        for txn in range(1, pick + 1):
            assert format_trace(c1.trace(txn)) == \
                format_trace(c2.trace(txn))

    def test_format_trace_mentions_the_story(self):
        _machine, _stats, collector = worker_run(
            protocol="DirnH1SNB,ACK")
        overflow = next(t for t in collector.transactions()
                        if t.handlers)
        text = format_trace(overflow)
        assert f"txn {overflow.txn}:" in text
        assert "msg" in text and "sw" in text and "trap" in text
