"""Processor timing: preemption accounting, batching, stalls, and the
interaction between user code and the protocol software context."""

from repro.common.types import TrapKind
from repro.core.software.costmodel import CostModel
from repro.machine.machine import Machine
from repro.machine.params import MachineParams

from tests.helpers import ScriptWorkload


def machine(n=4, protocol="DirnH2SNB", **overrides):
    return Machine(MachineParams(n_nodes=n, **overrides), protocol=protocol)


def post_dummy_trap(m, node_id, latency=300):
    cost = CostModel("flexible").ack()
    padded = type(cost)(latency, {"x": latency})
    m.nodes[node_id].processor.post_trap(
        TrapKind.REMOTE_REQUEST, padded, lambda: None)


class TestComputeAccounting:
    def test_long_compute_exact(self):
        m = machine()
        stats = m.run(ScriptWorkload({0: [("compute", 12345)]}))
        assert stats.run_cycles == 12345
        assert stats.per_node[0].user_cycles == 12345

    def test_batched_small_computes_exact(self):
        m = machine()
        ops = [("compute", 7)] * 100
        stats = m.run(ScriptWorkload({0: ops}))
        assert stats.run_cycles == 700
        assert stats.per_node[0].user_cycles == 700

    def test_mixed_sizes_exact(self):
        m = machine()
        ops = [("compute", 3), ("compute", 1000), ("compute", 5)]
        stats = m.run(ScriptWorkload({0: ops}))
        assert stats.run_cycles == 1008


class TestPreemption:
    def test_handler_extends_user_compute(self):
        """A trap posted mid-compute delays completion by exactly the
        handler's occupancy."""
        m = machine()
        m.sim.at(500, lambda: post_dummy_trap(m, 0, latency=300))
        stats = m.run(ScriptWorkload({0: [("compute", 1000)]}))
        overhead = m.params.trap_dispatch_overhead
        assert stats.run_cycles == 1000 + 300 + overhead
        assert stats.per_node[0].user_cycles == 1000
        assert stats.per_node[0].handler_cycles == 300 + overhead

    def test_back_to_back_handlers_serialise(self):
        m = machine()
        m.sim.at(100, lambda: post_dummy_trap(m, 0, latency=200))
        m.sim.at(110, lambda: post_dummy_trap(m, 0, latency=200))
        stats = m.run(ScriptWorkload({0: [("compute", 1000)]}))
        overhead = 2 * m.params.trap_dispatch_overhead
        assert stats.run_cycles == 1000 + 400 + overhead

    def test_handler_on_idle_node_does_not_stretch_user(self):
        """Traps arriving after the thread finished cost nothing to it."""
        m = machine()
        m.sim.at(5000, lambda: post_dummy_trap(m, 0, latency=300))
        stats = m.run(ScriptWorkload({0: [("compute", 100)]}))
        assert stats.run_cycles == 100

    def test_handler_during_stall_overlaps(self):
        """Handlers run while the user is blocked on memory; only the
        tail past the fill delays the user."""
        m = machine()
        addr = m.heap.alloc_block(1)  # remote home: a long miss
        m.sim.at(2, lambda: post_dummy_trap(m, 0, latency=10))
        stats = m.run(ScriptWorkload({0: [("read", addr)]}))
        # The 10-cycle handler finished well inside the miss latency.
        no_trap = machine()
        addr2 = no_trap.heap.alloc_block(1)
        baseline = no_trap.run(ScriptWorkload({0: [("read", addr2)]}))
        assert stats.run_cycles == baseline.run_cycles


class TestStallAccounting:
    def test_cycles_partition(self):
        """user + stall cycles account for the whole critical path of a
        single-node serial run."""
        m = machine()
        addr = m.heap.alloc_block(1)
        stats = m.run(ScriptWorkload(
            {0: [("compute", 50), ("read", addr), ("compute", 50)]},
        ))
        ns = stats.per_node[0]
        assert ns.user_cycles + ns.stall_cycles == stats.run_cycles

    def test_hit_latency_counts_as_user_time(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        stats = m.run(ScriptWorkload(
            {1: [("read", addr)] + [("read", addr)] * 9},
        ))
        ns = stats.per_node[1]
        assert ns.user_cycles >= 9 * m.params.cache_hit_latency


class TestVictimTiming:
    def test_victim_hits_cost_more_than_primary_hits(self):
        m = machine(victim_cache_enabled=True)
        a = m.heap.alloc_block(0)
        color = m.params.cache_set_of_block(a >> m.params.block_shift)
        b = m.heap.alloc_block(1, color=color)
        warm = [("read", a), ("read", b)]
        pingpong = [("read", a), ("read", b)] * 10
        stats = m.run(ScriptWorkload({2: warm + pingpong}))
        ns = stats.per_node[2]
        assert ns.victim_hits == 20
        # 2 + victim penalty per swap beyond the plain hit latency
        assert ns.user_cycles >= 20 * 3


class TestWatchdogTiming:
    def test_deferral_gives_user_a_window(self):
        m = machine(watchdog_threshold=100, watchdog_window=1000)
        m.nodes[0].processor.watchdog_enabled = True

        # Storm of traps that would otherwise run back to back.
        def storm(i=0):
            if i < 20:
                post_dummy_trap(m, 0, latency=150)
                m.sim.after(10, lambda: storm(i + 1))

        m.sim.at(50, storm)
        stats = m.run(ScriptWorkload({0: [("compute", 2000)]}))
        assert stats.per_node[0].watchdog_activations > 0
        # The user finished despite the storm.
        assert stats.per_node[0].user_cycles == 2000
