"""Tests for the protocol-notation spec (paper Section 2.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ProtocolSpecError
from repro.core.spec import (
    ALEWIFE_SUPPORTED,
    PAPER_SPECTRUM,
    AckMode,
    ProtocolSpec,
    hardware_pointer_label,
    spec_of,
)


class TestParsing:
    def test_full_map(self):
        spec = ProtocolSpec.parse("DirnHNBS-")
        assert spec.full_map
        assert not spec.needs_software
        assert spec.name == "DirnHNBS-"

    def test_limitless_five(self):
        spec = ProtocolSpec.parse("DirnH5SNB")
        assert spec.hw_pointers == 5
        assert spec.sw_extension
        assert not spec.sw_broadcast
        assert spec.ack_mode is AckMode.HARDWARE
        assert spec.local_bit

    def test_one_pointer_ack(self):
        spec = ProtocolSpec.parse("DirnH1SNB,ACK")
        assert spec.hw_pointers == 1
        assert spec.ack_mode is AckMode.SOFTWARE
        assert spec.smallset_opt

    def test_one_pointer_lack(self):
        spec = ProtocolSpec.parse("DirnH1SNB,LACK")
        assert spec.ack_mode is AckMode.LAST_SOFTWARE

    def test_one_pointer_hardware(self):
        spec = ProtocolSpec.parse("DirnH1SNB")
        assert spec.ack_mode is AckMode.HARDWARE

    def test_software_only(self):
        spec = ProtocolSpec.parse("DirnH0SNB,ACK")
        assert spec.is_software_only
        assert not spec.local_bit
        assert spec.ack_mode is AckMode.SOFTWARE

    def test_dir1sw(self):
        spec = ProtocolSpec.parse("Dir1H1SB,LACK")
        assert spec.sw_broadcast
        assert not spec.sw_extension
        assert spec.ack_mode is AckMode.LAST_SOFTWARE
        assert not spec.traps_on_read_overflow

    def test_case_insensitive(self):
        assert ProtocolSpec.parse("dirnh5snb").name == "DirnH5SNB"

    def test_aliases(self):
        assert ProtocolSpec.parse("full-map").full_map
        assert ProtocolSpec.parse("fullmap").full_map
        assert ProtocolSpec.parse("software-only").is_software_only
        assert ProtocolSpec.parse("limitless4").hw_pointers == 4
        assert ProtocolSpec.parse("dir1sw").sw_broadcast

    def test_spaces_and_underscores_tolerated(self):
        assert ProtocolSpec.parse("Dir_n H_5 S_NB").name == "DirnH5SNB"

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("DirXH5SNB")
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("")
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("Dir5")

    def test_full_map_with_software_options_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("DirnHNBS-,ACK")
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("DirnHNBSB")

    def test_dir_i_without_broadcast_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("Dir1H1SNB")

    def test_dir_i_mismatched_pointer_counts_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec.parse("Dir2H1SB")


class TestValidation:
    def test_h0_requires_software_acks(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec(hw_pointers=0, ack_mode=AckMode.HARDWARE,
                         local_bit=False)

    def test_h0_rejects_local_bit(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec(hw_pointers=0, ack_mode=AckMode.SOFTWARE,
                         local_bit=True)

    def test_broadcast_and_extension_exclusive(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec(hw_pointers=1, sw_extension=True, sw_broadcast=True)

    def test_negative_pointers_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec(hw_pointers=-1)

    def test_plain_limited_directory_rejected(self):
        with pytest.raises(ProtocolSpecError):
            ProtocolSpec(hw_pointers=3, sw_extension=False,
                         sw_broadcast=False)


class TestRoundTrip:
    """``parse(str(spec)) == spec``: the notation is a faithful codec."""

    @pytest.mark.parametrize("name", sorted(
        set(PAPER_SPECTRUM) | set(ALEWIFE_SUPPORTED) | {"Dir1H1SB,LACK"}
    ))
    def test_spectrum_point_roundtrips(self, name):
        spec = ProtocolSpec.parse(name)
        assert ProtocolSpec.parse(str(spec)) == spec
        assert str(spec) == spec.name

    @pytest.mark.parametrize("bad", [
        "", "Dir", "DirXH5SNB", "DirnH5", "DirnH5SNB,NACK", "DirnHS",
        "Dirn H S", "DirnH-3SNB", "H5SNB", "DirnH5SNB,ACK,LACK",
    ])
    def test_malformed_names_raise_value_error(self, bad):
        with pytest.raises(ValueError) as excinfo:
            ProtocolSpec.parse(bad)
        # The message should name the offending input (or explain the
        # structural problem) so CLI users can see what to fix.
        assert str(excinfo.value)

    def test_spec_error_is_value_error(self):
        assert issubclass(ProtocolSpecError, ValueError)


class TestProperties:
    def test_spectrum_parses(self):
        for name in PAPER_SPECTRUM:
            assert ProtocolSpec.parse(name).name == name

    def test_alewife_supported_parses(self):
        for name in ALEWIFE_SUPPORTED:
            ProtocolSpec.parse(name)

    def test_spec_of_passthrough(self):
        spec = ProtocolSpec.parse("DirnH3SNB")
        assert spec_of(spec) is spec
        assert spec_of("DirnH3SNB") == spec

    def test_hardware_pointer_label(self):
        assert hardware_pointer_label(ProtocolSpec.parse("DirnH5SNB")) == "5"
        assert hardware_pointer_label(
            ProtocolSpec.parse("DirnHNBS-"), n_nodes=64) == "64"
        assert hardware_pointer_label(ProtocolSpec.parse("DirnHNBS-")) == "n"

    def test_with_updates(self):
        spec = ProtocolSpec.parse("DirnH5SNB")
        no_bit = spec.with_updates(local_bit=False)
        assert spec.local_bit and not no_bit.local_bit
        assert no_bit.hw_pointers == 5

    @given(st.integers(min_value=1, max_value=9),
           st.sampled_from(["", ",ACK", ",LACK"]))
    def test_roundtrip_dirn(self, pointers, suffix):
        name = f"DirnH{pointers}SNB{suffix}"
        spec = ProtocolSpec.parse(name)
        assert spec.name == name
        assert ProtocolSpec.parse(spec.name) == spec

    @given(st.integers(min_value=1, max_value=9),
           st.sampled_from([",ACK", ",LACK", ""]))
    def test_roundtrip_broadcast(self, pointers, suffix):
        name = f"Dir{pointers}H{pointers}SB{suffix}"
        spec = ProtocolSpec.parse(name)
        assert spec.sw_broadcast
        assert ProtocolSpec.parse(spec.name) == spec

    def test_frozen(self):
        spec = ProtocolSpec.parse("DirnH5SNB")
        with pytest.raises(Exception):
            spec.hw_pointers = 2  # type: ignore[misc]
