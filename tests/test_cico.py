"""Tests for CICO (Check-In/Check-Out) annotations (Sections 2 and 7)."""

from repro.common.types import CacheState, DirState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload, check_coherence

INV = CacheState.INVALID


def machine(n=16, protocol="DirnH5SNB"):
    return Machine(MachineParams(n_nodes=n), protocol=protocol)


class TestCheckIn:
    def test_clean_checkin_drops_pointer(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload(
            {2: [("read", addr), ("checkin", addr), ("compute", 50)]},
        ))
        assert m.nodes[2].cache_ctrl.state_of(blk) is INV
        entry = m.nodes[0].home.entries[blk]
        assert entry.state is DirState.ABSENT

    def test_dirty_checkin_writes_back(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload(
            {2: [("write", addr), ("checkin", addr), ("compute", 50)]},
        ))
        assert m.nodes[2].cache_ctrl.state_of(blk) is INV
        assert m.nodes[0].home.entries[blk].state is DirState.ABSENT
        assert m.nodes[2].stats.dirty_evictions == 1

    def test_checkin_of_uncached_block_is_a_noop(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        stats = m.run(ScriptWorkload({2: [("checkin", addr)]}))
        assert stats.total("dirty_evictions") == 0

    def test_checked_in_pointer_frees_directory_slot(self):
        """With disciplined check-ins, five pointers absorb any number
        of sequential readers without ever trapping."""
        m = machine(protocol="DirnH1SNB,LACK")
        addr = m.heap.alloc_block(0)
        scripts = {}
        for i, node in enumerate(range(1, 10)):
            scripts[node] = [("compute", 120 * i), ("read", addr),
                             ("checkin", addr)]
        m.run(ScriptWorkload(scripts))
        assert m.nodes[0].stats.traps.get("read_overflow", 0) == 0


class TestBroadcastFlagClearing:
    def test_full_checkin_restores_exactness(self):
        m = machine(protocol="Dir1H1SB,LACK")
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        scripts = {node: [("compute", 60 * node), ("read", addr),
                          ("compute", 400), ("checkin", addr),
                          ("barrier",)]
                   for node in range(1, 5)}
        scripts[7] = [("barrier",), ("write", addr)]
        m.run(ScriptWorkload(scripts))
        # The write found an exact directory: no broadcast, no trap.
        assert m.nodes[0].stats.traps.get("write_extended", 0) == 0
        assert m.nodes[0].stats.invalidations_sw == 0
        assert check_coherence(m) == []

    def test_partial_checkin_keeps_broadcast(self):
        m = machine(protocol="Dir1H1SB,LACK")
        addr = m.heap.alloc_block(0)
        scripts = {node: [("compute", 60 * node), ("read", addr),
                          ("barrier",)]
                   for node in range(1, 5)}
        # Only node 2 checks in; the others keep copies.
        scripts[2] = [("compute", 120), ("read", addr),
                      ("checkin", addr), ("barrier",)]
        scripts[7] = [("barrier",), ("write", addr)]
        m.run(ScriptWorkload(scripts))
        assert m.nodes[0].stats.traps.get("write_extended", 0) == 1
        assert check_coherence(m) == []


class TestWorkerCico:
    def test_annotations_eliminate_dir1sw_broadcasts(self):
        plain = machine(protocol="Dir1H1SB,LACK")
        s_plain = plain.run(WorkerBenchmark(worker_set_size=8,
                                            iterations=2, cico=False))
        annotated = machine(protocol="Dir1H1SB,LACK")
        s_cico = annotated.run(WorkerBenchmark(worker_set_size=8,
                                               iterations=2, cico=True))
        assert s_plain.total("invalidations_sw") > 0
        assert s_cico.total("invalidations_sw") == 0
        assert s_cico.total_traps == 0
        assert s_cico.run_cycles < s_plain.run_cycles

    def test_annotations_preserve_coherence(self):
        for protocol in ("Dir1H1SB,LACK", "DirnH5SNB", "DirnH0SNB,ACK"):
            m = machine(protocol=protocol)
            m.run(WorkerBenchmark(worker_set_size=6, iterations=2,
                                  cico=True))
            assert check_coherence(m) == []
