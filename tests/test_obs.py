"""Tests for the observability layer (repro.obs).

Covers the event bus and its probe points, the interval sampler, the
latency histograms, both exporters, and the headline invariant:
attaching observers changes no simulated cycle count.
"""

import dataclasses
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.obs import (
    EventBus,
    Histogram,
    HistogramSet,
    IntervalSampler,
    LatencyRecorder,
    SpanCollector,
    TraceCollector,
    chrome_trace,
    metrics_dict,
    write_json,
)
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload, tiny_machine

# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------


def observed_run(n_nodes=9, protocol="DirnH2SNB", ops=None):
    """Run a small scripted workload with every channel collected."""
    machine = tiny_machine(n_nodes=n_nodes, protocol=protocol)
    collector = TraceCollector.attach(machine)
    recorder = LatencyRecorder.attach(machine)
    sampler = IntervalSampler.attach(machine, every=500)
    if ops is None:
        a = machine.heap.alloc_block(0)
        b = machine.heap.alloc_block(1)
        ops = {
            1: [("read", a), ("compute", 200), ("write", a)],
            2: [("write", a), ("compute", 100), ("read", b)],
            3: [("read", b), ("read", a)],
        }
    stats = machine.run(ScriptWorkload(ops))
    sampler.finish(stats.run_cycles)
    return machine, stats, collector, recorder, sampler


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------


class TestEventBus:
    def test_machine_starts_unobserved(self):
        machine = tiny_machine()
        assert machine.obs is None
        assert machine.sim.probe is None
        assert machine.fabric.obs is None

    def test_observe_is_idempotent(self):
        machine = tiny_machine()
        bus = machine.observe()
        assert machine.observe() is bus
        assert machine.fabric.obs is bus
        assert machine.sim.probe == bus.advance

    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        assert bus.idle
        fn = lambda ev: None  # noqa: E731
        bus.subscribe("message", fn)
        assert not bus.idle
        assert fn in bus.on_message
        bus.unsubscribe("message", fn)
        bus.unsubscribe("message", fn)  # no-op on repeat
        assert bus.idle

    def test_unknown_channel_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown channel"):
            bus.subscribe("bogus", lambda ev: None)

    def test_probe_points_fire(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        assert collector.user_spans, "no user spans recorded"
        assert collector.stall_spans, "no stall spans recorded"
        assert collector.messages, "no messages recorded"
        assert len(collector) > 0

    def test_trap_channel_fires_on_software_protocol(self):
        machine = tiny_machine(n_nodes=9, protocol="DirnH2SNB")
        traps = []
        machine.observe().on_trap.append(traps.append)
        addr = machine.heap.alloc_block(0)
        # Four readers overflow the two hardware pointers -> traps.
        machine.run(ScriptWorkload({
            n: [("read", addr)] for n in range(1, 6)
        }))
        assert traps
        assert all(t.cost > 0 for t in traps)

    def test_span_invariants(self):
        _machine, stats, collector, _rec, _smp = observed_run()
        for span in collector.user_spans:
            assert 0 <= span.start < span.end
        for span in collector.stall_spans:
            assert span.start <= span.end
            assert span.kind in ("read", "write", "ifetch", "lock",
                                 "reduce", "sw_wait")
        for message in collector.messages:
            assert message.delivered_at >= message.sent_at

    def test_user_cycles_match_span_totals(self):
        machine, stats, collector, _rec, _smp = observed_run()
        by_node = {}
        for span in collector.user_spans:
            by_node[span.node] = by_node.get(span.node, 0) \
                + (span.end - span.start)
        for node_stats in stats.per_node:
            assert by_node.get(node_stats.node, 0) == \
                node_stats.user_cycles


# ----------------------------------------------------------------------
# The headline invariant: observers do not perturb the simulation
# ----------------------------------------------------------------------


class TestZeroPerturbation:
    def run_worker(self, observe):
        machine = Machine(MachineParams(n_nodes=16),
                          protocol="DirnH5SNB")
        observers = None
        if observe:
            observers = (TraceCollector.attach(machine),
                         LatencyRecorder.attach(machine),
                         IntervalSampler.attach(machine, every=1000),
                         SpanCollector.attach(machine))
        stats = machine.run(WorkerBenchmark(worker_set_size=6,
                                            iterations=2))
        return stats, observers

    def test_worker_cycle_counts_identical_with_observers(self):
        bare, _ = self.run_worker(observe=False)
        observed, observers = self.run_worker(observe=True)
        assert observers is not None and len(observers[0]) > 0
        assert len(observers[3]) > 0  # span tracing was live too
        assert observed.run_cycles == bare.run_cycles
        for a, b in zip(bare.per_node, observed.per_node):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_empty_bus_does_not_perturb(self):
        bare, _ = self.run_worker(observe=False)
        machine = Machine(MachineParams(n_nodes=16),
                          protocol="DirnH5SNB")
        machine.observe()  # bus attached, zero subscribers
        stats = machine.run(WorkerBenchmark(worker_set_size=6,
                                            iterations=2))
        assert stats.run_cycles == bare.run_cycles


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0
        assert hist.summary()["count"] == 0

    def test_basic_percentiles(self):
        hist = Histogram()
        for v in range(1, 101):  # 1..100
            hist.add(v)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100
        assert hist.min == 1 and hist.max == 100
        assert hist.mean == pytest.approx(50.5)

    def test_percentile_bounds_checked(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(10)
        b.add(20, weight=3)
        a.merge(b)
        assert a.count == 4
        assert a.total == 70
        assert a.percentile(50) == 20

    @given(st.lists(st.integers(min_value=0, max_value=5000),
                    min_size=1, max_size=200))
    def test_percentile_is_order_statistic(self, values):
        hist = Histogram()
        for v in values:
            hist.add(v)
        ordered = sorted(values)
        for p in (50, 90, 99, 100):
            rank = max(1, -(-len(values) * p // 100))
            assert hist.percentile(p) == ordered[rank - 1]

    def test_histogram_set_sorted_keys(self):
        hs = HistogramSet()
        hs.record("write", 5)
        hs.record("read", 3)
        hs.record("read", 7)
        assert hs.keys() == ["read", "write"]
        assert hs["read"].count == 2
        assert "ack" not in hs
        assert len(hs) == 2

    def test_run_stats_histogram_view(self):
        _machine, stats, _col, recorder, _smp = observed_run()
        hist = stats.handler_latency_histogram("read", "flexible")
        if hist.count:
            # The stored-sample view and the live recorder agree.
            assert hist.count == recorder.handlers["read"].count
            assert hist.percentile(50) == \
                recorder.handlers["read"].percentile(50)


class TestLatencyRecorder:
    def test_handler_latencies_match_samples(self):
        _machine, stats, _col, recorder, _smp = observed_run()
        recorded = sum(h.count for _, h in recorder.handlers.items())
        assert recorded == len(stats.handler_samples)

    def test_stall_kinds_present(self):
        _machine, _stats, _col, recorder, _smp = observed_run()
        assert "read" in recorder.stalls or "write" in recorder.stalls

    def test_summary_shape(self):
        _machine, _stats, _col, recorder, _smp = observed_run()
        summary = recorder.summary()
        assert set(summary) == {"handlers", "stalls"}
        for digest in summary["stalls"].values():
            assert {"count", "mean", "min", "max",
                    "p50", "p90", "p99"} <= set(digest)


# ----------------------------------------------------------------------
# Interval sampler
# ----------------------------------------------------------------------


class TestIntervalSampler:
    def test_rows_cover_the_run(self):
        _machine, stats, _col, _rec, sampler = observed_run()
        assert sampler.rows
        assert sampler.rows[0].start == 0
        for prev, nxt in zip(sampler.rows, sampler.rows[1:]):
            assert nxt.start == prev.end
        assert sampler.rows[-1].end == stats.run_cycles

    def test_deltas_sum_to_totals(self):
        _machine, stats, _col, _rec, sampler = observed_run()
        for field in ("user_cycles", "stall_cycles", "cache_misses"):
            summed = sum(row.total(field) for row in sampler.rows)
            assert summed == stats.total(field)
        summed_traps = sum(row.total("traps") for row in sampler.rows)
        assert summed_traps == stats.total_traps

    def test_finish_is_idempotent(self):
        _machine, stats, _col, _rec, sampler = observed_run()
        n_rows = len(sampler.rows)
        sampler.finish(stats.run_cycles)
        assert len(sampler.rows) == n_rows

    def test_row_derived_metrics(self):
        _machine, _stats, _col, _rec, sampler = observed_run()
        for row in sampler.rows:
            assert 0.0 <= row.utilization <= 1.0
            assert 0.0 <= row.miss_rate <= 1.0
            assert row.cycles == row.end - row.start

    def test_bad_interval_rejected(self):
        machine = tiny_machine()
        with pytest.raises(ValueError):
            IntervalSampler(machine, every=0)

    def test_summary_is_json_friendly(self):
        _machine, _stats, _col, _rec, sampler = observed_run()
        text = json.dumps(sampler.summary())
        assert json.loads(text) == sampler.summary()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_document_shape(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        doc = chrome_trace(collector, n_nodes=9)
        events = doc["traceEvents"]
        assert events
        phases = {ev["ph"] for ev in events}
        assert {"M", "X"} <= phases  # metadata + spans
        assert {"s", "f"} <= phases  # message flow arrows
        names = {ev["name"] for ev in events if ev["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names

    def test_every_node_has_a_track(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        doc = chrome_trace(collector, n_nodes=9)
        names = {ev["tid"]: ev["args"]["name"]
                 for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        # Every node gets an even cpu lane; odd software lanes exist
        # only for nodes that actually ran a handler.
        assert {2 * n for n in range(9)} <= set(names)
        for node in range(9):
            assert names[2 * node] == f"node {node}"
        for tid, name in names.items():
            if tid % 2:
                assert name == f"node {tid // 2} sw"

    def test_spans_have_nonnegative_durations(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        doc = chrome_trace(collector)
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0

    def test_flow_arrows_pair_up(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        doc = chrome_trace(collector)
        starts = {ev["id"] for ev in doc["traceEvents"]
                  if ev["ph"] == "s" and ev["cat"] == "message"}
        finishes = {ev["id"] for ev in doc["traceEvents"]
                    if ev["ph"] == "f" and ev["cat"] == "message"}
        assert starts == finishes
        assert len(starts) == len(collector.messages)

    def test_txn_flows_pair_up(self):
        _machine, _stats, collector, _rec, _smp = observed_run()
        doc = chrome_trace(collector)
        starts = {ev["id"] for ev in doc["traceEvents"]
                  if ev["ph"] == "s" and ev["cat"] == "txn"}
        finishes = {ev["id"] for ev in doc["traceEvents"]
                    if ev["ph"] == "f" and ev["cat"] == "txn"}
        assert starts == finishes
        # Every chain starts on the requester's cpu lane at the stall
        # and finishes on a software lane at a handler start.
        for ev in doc["traceEvents"]:
            if ev.get("cat") != "txn":
                continue
            if ev["ph"] == "s":
                assert ev["tid"] % 2 == 0
            elif ev["ph"] in ("t", "f"):
                assert ev["tid"] % 2 == 1

    def test_empty_run_exports_valid_document(self):
        collector = TraceCollector()
        doc = chrome_trace(collector, n_nodes=4)
        events = doc["traceEvents"]
        assert events  # metadata survives an empty run
        assert all(ev["ph"] == "M" for ev in events)
        json.dumps(doc)  # serialisable

    def test_lanes_never_overlap(self):
        # Handler spans land on software lanes, user/stall spans on cpu
        # lanes, so no lane ever holds two overlapping slices — the
        # property trace viewers need for correct nesting.
        _machine, _stats, collector, _rec, _smp = observed_run(
            protocol="DirnH1SNB,ACK")
        doc = chrome_trace(collector)
        by_lane = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                by_lane.setdefault(ev["tid"], []).append(
                    (ev["ts"], ev["ts"] + ev["dur"]))
        assert collector.handler_spans  # the run exercised software
        for lane, spans in sorted(by_lane.items()):
            spans.sort()
            for (_s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                assert e0 <= s1, f"overlap on lane {lane}"

    def test_json_serialisable(self, tmp_path):
        _machine, _stats, collector, _rec, _smp = observed_run()
        path = tmp_path / "trace.json"
        write_json(str(path), chrome_trace(collector))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


class TestMetricsExport:
    def test_document_contents(self):
        _machine, stats, _col, recorder, sampler = observed_run()
        doc = metrics_dict(stats, config={"app": "script"},
                           sampler=sampler, recorder=recorder)
        assert doc["schema"] == "repro-metrics/1"
        assert doc["run"]["run_cycles"] == stats.run_cycles
        assert doc["config"] == {"app": "script"}
        assert doc["totals"]["loads"] == stats.total("loads")
        assert len(doc["per_node"]) == stats.n_nodes
        assert doc["timeseries"]["interval"] == sampler.every
        assert len(doc["timeseries"]["rows"]) == len(sampler.rows)
        assert "handlers" in doc["histograms"]

    def test_byte_identical_across_runs(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            _machine, stats, _col, recorder, sampler = observed_run()
            path = tmp_path / name
            write_json(str(path),
                       metrics_dict(stats, sampler=sampler,
                                    recorder=recorder))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_minimal_document_without_observers(self):
        machine = tiny_machine()
        addr = machine.heap.alloc_block(0)
        stats = machine.run(ScriptWorkload({1: [("read", addr)]}))
        doc = metrics_dict(stats)
        assert "timeseries" not in doc
        assert "histograms" not in doc
        assert "config" not in doc
        json.dumps(doc)  # serialisable


# ----------------------------------------------------------------------
# Fabric introspection used by the sampler
# ----------------------------------------------------------------------


class TestFabricBacklog:
    def test_backlog_nonnegative_and_clamped(self):
        machine = tiny_machine()
        fabric = machine.fabric
        assert fabric.tx_backlog(0, now=0) == 0
        assert fabric.rx_backlog(0, now=10**9) == 0

    def test_backlog_reflects_queued_flits(self):
        machine = tiny_machine()
        machine.nodes[0].send_protocol("rreq", 3, 1)
        assert machine.fabric.tx_backlog(0, now=0) > 0


class TestDetailedFabricProbe:
    def test_link_level_fabric_emits_messages(self):
        machine = Machine(MachineParams(n_nodes=9),
                          protocol="DirnH2SNB", network_model="links")
        messages = []
        machine.observe().on_message.append(messages.append)
        addr = machine.heap.alloc_block(0)
        machine.run(ScriptWorkload({1: [("read", addr)],
                                    2: [("read", addr)]}))
        kinds = {m.kind for m in messages}
        assert "rreq" in kinds and "rdata" in kinds
        assert all(m.delivered_at >= m.sent_at for m in messages)
