"""The rendered tables in docs/protocols.md cannot drift from the code.

``docs/protocols.md`` embeds markdown renderings of the executable
protocol tables between marker comments; this test re-renders them and
asserts the file is a fixed point.  If it fails, run::

    PYTHONPATH=src python tools/render_protocol_docs.py
"""

from pathlib import Path

import pytest

from repro.core.protocol import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    render_transition_table,
)
from repro.core.protocol.render import embed_rendered_tables

DOC = Path(__file__).parent.parent / "docs" / "protocols.md"


def test_protocols_doc_matches_executable_tables():
    text = DOC.read_text(encoding="utf-8")
    assert embed_rendered_tables(text) == text, (
        "docs/protocols.md is stale; regenerate with "
        "tools/render_protocol_docs.py"
    )


def test_doc_contains_both_rendered_tables():
    text = DOC.read_text(encoding="utf-8")
    for table in (HARDWARE_TABLE, SOFTWARE_ONLY_TABLE):
        assert render_transition_table(table) in text


@pytest.mark.parametrize("table", [HARDWARE_TABLE, SOFTWARE_ONLY_TABLE],
                         ids=lambda t: t.name)
def test_render_covers_every_transition(table):
    rendered = render_transition_table(table)
    for row in table.transitions:
        assert f"`{row.action}`" in rendered


def test_embed_rejects_missing_markers():
    with pytest.raises(ValueError, match="marker pair"):
        embed_rendered_tables("no markers here")
