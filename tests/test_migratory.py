"""Tests for migratory-data detection (Section 7's dynamic detection)."""

from repro.common.types import CacheState, DirState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams

from tests.helpers import ScriptWorkload, check_coherence

RW = CacheState.READ_WRITE
RO = CacheState.READ_ONLY


def machine(detect=True, n=16, protocol="DirnH5SNB"):
    return Machine(MachineParams(n_nodes=n), protocol=protocol,
                   migratory_detection=detect)


def token_scripts(addr, nodes, rounds=2):
    """Each node in turn reads then writes the shared block."""
    scripts = {}
    for node in nodes:
        ops = []
        for _round in range(rounds):
            for turn in nodes:
                if turn == node:
                    ops.append(("read", addr))
                    ops.append(("compute", 20))
                    ops.append(("write", addr))
                ops.append(("barrier",))
        scripts[node] = ops
    return scripts


class TestDetection:
    def test_block_marked_migratory_after_pattern(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3])))
        entry = m.nodes[0].home.entries[addr >> m.params.block_shift]
        assert entry.migratory

    def test_detection_off_by_default(self):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3])))
        entry = m.nodes[0].home.entries[addr >> m.params.block_shift]
        assert not entry.migratory

    def test_read_shared_block_not_marked(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        scripts = {node: [("compute", 30 * node), ("read", addr)]
                   for node in range(1, 8)}
        m.run(ScriptWorkload(scripts))
        entry = m.nodes[0].home.entries[addr >> m.params.block_shift]
        assert not entry.migratory
        assert entry.migratory_evidence == 0

    def test_racing_readers_revert_migratory(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        scripts = token_scripts(addr, [1, 2, 3])
        # After the migration rounds, several nodes read *concurrently*:
        # their requests race the migratory exclusive handoffs, which is
        # the observable signal that the block is read-shared after all.
        for node in (4, 5, 6, 7):
            scripts[node] = ([("barrier",)] * 6
                             + [("read", addr), ("read", addr)])
        m.run(ScriptWorkload(scripts))
        entry = m.nodes[0].home.entries[addr >> m.params.block_shift]
        assert not entry.migratory


class TestBehaviour:
    def test_migratory_read_granted_exclusively(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        scripts = token_scripts(addr, [1, 2, 3], rounds=2)
        # One extra read at the very end by node 4.
        scripts[4] = [("barrier",)] * 12 + [("read", addr)]
        m.run(ScriptWorkload(scripts))
        # The read was served with an exclusive (writable) copy.
        assert m.nodes[4].cache_ctrl.state_of(blk) is RW
        entry = m.nodes[0].home.entries[blk]
        assert entry.state is DirState.READ_WRITE
        assert entry.owner == 4

    def test_fewer_transactions_with_detection(self):
        def requests(detect):
            m = machine(detect=detect)
            addr = m.heap.alloc_block(0)
            m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3, 4],
                                               rounds=3)))
            return sum(ns.messages_sent["rreq"] + ns.messages_sent["wreq"]
                       for ns in (node.stats for node in m.nodes))

        assert requests(True) < requests(False)

    def test_faster_with_detection(self):
        def cycles(detect):
            m = machine(detect=detect)
            addr = m.heap.alloc_block(0)
            m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3, 4],
                                               rounds=3)))
            return m.sim.now

        assert cycles(True) < cycles(False)

    def test_coherent_with_detection(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3, 4], rounds=3)))
        assert check_coherence(m) == []

    def test_works_across_protocols(self):
        for protocol in ("DirnH1SNB,LACK", "DirnH2SNB", "DirnHNBS-"):
            m = machine(protocol=protocol)
            addr = m.heap.alloc_block(0)
            m.run(ScriptWorkload(token_scripts(addr, [1, 2, 3])))
            assert check_coherence(m) == []
