"""Tests for the handler cost model (paper Tables 1 and 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.software.costmodel import (
    FLEXIBLE,
    OPTIMIZED,
    TABLE2_ACTIVITIES,
    CostModel,
)


class TestTable2Reproduction:
    """The 8-reader medians of Table 2 are reproduced exactly."""

    def test_flexible_read_total(self):
        cost = CostModel(FLEXIBLE).read_overflow(pointers_emptied=5)
        assert cost.latency == 480

    def test_flexible_write_total(self):
        cost = CostModel(FLEXIBLE).write_extended(invalidations=8)
        assert cost.latency == 737

    def test_optimized_read_total(self):
        cost = CostModel(OPTIMIZED).read_overflow(pointers_emptied=5)
        assert cost.latency == 193

    def test_optimized_write_total(self):
        cost = CostModel(OPTIMIZED).write_extended(invalidations=8)
        assert cost.latency == 384

    def test_flexible_read_breakdown_rows(self):
        b = CostModel(FLEXIBLE).read_overflow(5).breakdown
        assert b["trap dispatch"] == 11
        assert b["system message dispatch"] == 14
        assert b["protocol-specific dispatch"] == 10
        assert b["decode and modify hardware directory"] == 22
        assert b["save state for function calls"] == 24
        assert b["memory management"] == 60
        assert b["hash table administration"] == 80
        assert b["store pointers into extended directory"] == 235
        assert b["support for non-Alewife protocols"] == 10
        assert b["trap return"] == 14

    def test_flexible_write_breakdown_rows(self):
        b = CostModel(FLEXIBLE).write_extended(8).breakdown
        assert b["trap dispatch"] == 9
        assert b["decode and modify hardware directory"] == 52
        assert b["memory management"] == 28
        assert b["hash table administration"] == 74
        assert b["store pointers into extended directory"] == 99
        assert b["invalidation lookup and transmit"] == 419
        assert b["trap return"] == 9

    def test_optimized_has_no_hash_table(self):
        b = CostModel(OPTIMIZED).read_overflow(5).breakdown
        assert "hash table administration" not in b
        assert "protocol-specific dispatch" not in b
        assert "save state for function calls" not in b
        assert "support for non-Alewife protocols" not in b

    def test_breakdown_names_are_table2_rows(self):
        for impl in (FLEXIBLE, OPTIMIZED):
            model = CostModel(impl)
            for cost in (model.read_overflow(5), model.write_extended(8)):
                for name in cost.breakdown:
                    assert name in TABLE2_ACTIVITIES

    def test_latency_equals_breakdown_sum(self):
        model = CostModel(FLEXIBLE)
        for cost in (model.read_overflow(3), model.write_extended(12),
                     model.ack(), model.last_ack(),
                     model.sw_request("read", 1),
                     model.sw_request("write", 4), model.local_fault()):
            assert cost.latency == sum(cost.breakdown.values())


class TestScaling:
    @given(st.integers(min_value=0, max_value=64),
           st.integers(min_value=0, max_value=64))
    def test_write_monotonic_in_invalidations(self, a, b):
        model = CostModel(FLEXIBLE)
        lo, hi = sorted((a, b))
        assert (model.write_extended(lo).latency
                <= model.write_extended(hi).latency)

    @given(st.integers(min_value=0, max_value=16),
           st.integers(min_value=0, max_value=16))
    def test_read_monotonic_in_pointers(self, a, b):
        model = CostModel(OPTIMIZED)
        lo, hi = sorted((a, b))
        assert (model.read_overflow(lo).latency
                <= model.read_overflow(hi).latency)

    @given(st.integers(min_value=0, max_value=64))
    def test_optimized_faster_than_flexible(self, count):
        flex = CostModel(FLEXIBLE)
        opt = CostModel(OPTIMIZED)
        assert (opt.read_overflow(count).latency
                < flex.read_overflow(count).latency)
        assert (opt.write_extended(count).latency
                < flex.write_extended(count).latency)
        assert opt.ack().latency < flex.ack().latency

    def test_factor_of_two_claim(self):
        """Section 4.2: hand-tuning reduces handler latency by about 2x."""
        flex = CostModel(FLEXIBLE)
        opt = CostModel(OPTIMIZED)
        read_ratio = flex.read_overflow(5).latency / opt.read_overflow(5).latency
        write_ratio = (flex.write_extended(8).latency
                       / opt.write_extended(8).latency)
        assert 1.7 <= read_ratio <= 2.8
        assert 1.6 <= write_ratio <= 2.4


class TestSmallSetOptimization:
    """Section 5: the memory-usage optimization for sets of <= 4."""

    @given(st.integers(min_value=0, max_value=4))
    def test_small_sets_cheaper(self, count):
        plain = CostModel(FLEXIBLE, smallset_opt=False)
        opt = CostModel(FLEXIBLE, smallset_opt=True)
        assert (opt.read_overflow(count, small=True).latency
                < plain.read_overflow(count, small=True).latency)
        assert (opt.write_extended(count, small=True).latency
                < plain.write_extended(count, small=True).latency)

    def test_small_flag_ignored_without_opt(self):
        model = CostModel(FLEXIBLE, smallset_opt=False)
        assert (model.read_overflow(2, small=True).latency
                == model.read_overflow(2, small=False).latency)

    def test_large_sets_unaffected(self):
        with_opt = CostModel(FLEXIBLE, smallset_opt=True)
        without = CostModel(FLEXIBLE, smallset_opt=False)
        assert (with_opt.write_extended(10, small=False).latency
                == without.write_extended(10, small=False).latency)


class TestAckHandlers:
    def test_last_ack_adds_data_transmit(self):
        model = CostModel(FLEXIBLE)
        assert model.last_ack().latency == model.ack().latency + 30
        opt = CostModel(OPTIMIZED)
        assert opt.last_ack().latency == opt.ack().latency + 15

    def test_ack_cheaper_than_request_handlers(self):
        model = CostModel(FLEXIBLE)
        assert model.ack().latency < model.read_overflow(1).latency
        assert model.ack().latency < model.write_extended(1).latency

    def test_message_spacing(self):
        assert CostModel(FLEXIBLE).message_spacing == 9
        assert CostModel(OPTIMIZED).message_spacing == 6
        assert CostModel(FLEXIBLE).write_extended(4).per_message_spacing == 9


class TestValidation:
    def test_unknown_implementation_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel("turbo")

    def test_sw_request_write_without_targets_sends_data(self):
        cost = CostModel(FLEXIBLE).sw_request("write", 0)
        assert "data transmit" in cost.breakdown
        assert "invalidation lookup and transmit" not in cost.breakdown

    def test_sw_request_read_includes_data_send(self):
        cost = CostModel(FLEXIBLE).sw_request("read", 1)
        assert "data transmit" in cost.breakdown
