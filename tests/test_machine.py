"""Tests for the machine driver, processor accounting, barriers, heap
integration, and deadlock detection."""

import pytest

from repro.common.errors import ConfigurationError, DeadlockError
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.base import Workload
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload


def machine(n=4, protocol="DirnH2SNB", **overrides):
    return Machine(MachineParams(n_nodes=n, **overrides), protocol=protocol)


class TestRunLifecycle:
    def test_machine_is_single_use(self):
        m = machine()
        m.run(ScriptWorkload({0: [("compute", 10)]}))
        with pytest.raises(ConfigurationError):
            m.run(ScriptWorkload({0: [("compute", 10)]}))

    def test_run_cycles_is_last_processor_finish(self):
        m = machine()
        stats = m.run(ScriptWorkload(
            {0: [("compute", 100)], 1: [("compute", 350)]},
        ))
        assert stats.run_cycles == 350

    def test_pure_compute_accounting(self):
        m = machine()
        stats = m.run(ScriptWorkload({0: [("compute", 123)]}))
        assert stats.per_node[0].user_cycles == 123
        assert stats.sequential_cycles == 123

    def test_memory_ops_count_into_sequential_time(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        stats = m.run(ScriptWorkload(
            {1: [("read", addr), ("write", addr), ("compute", 10)]},
        ))
        assert stats.sequential_cycles == (
            10 + 2 * m.params.cache_hit_latency)

    def test_cache_hits_after_fill(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        ops = [("read", addr)] * 10
        stats = m.run(ScriptWorkload({1: ops}))
        assert stats.per_node[1].cache_misses == 1
        assert stats.per_node[1].cache_hits == 9

    def test_stall_cycles_recorded_for_misses(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        stats = m.run(ScriptWorkload({2: [("read", addr)]}))
        assert stats.per_node[2].stall_cycles > 0

    def test_speedup_and_utilization(self):
        m = machine()
        stats = m.run(ScriptWorkload(
            {node: [("compute", 1000)] for node in range(4)},
        ))
        assert stats.speedup == pytest.approx(4.0, rel=0.05)
        assert stats.processor_utilization == pytest.approx(1.0, rel=0.05)

    def test_deadlock_detected_on_barrier_mismatch(self):
        class Unbalanced(Workload):
            name = "unbalanced"

            def setup(self, machine):
                pass

            def thread(self, machine, node_id):
                if node_id == 0:
                    yield ("barrier",)
                else:
                    yield ("compute", 5)

        m = machine()
        with pytest.raises(DeadlockError):
            m.run(Unbalanced())

    def test_max_cycles_cuts_run_short(self):
        m = machine()
        with pytest.raises(DeadlockError):
            m.run(ScriptWorkload({0: [("compute", 10_000)]}),
                  max_cycles=100)


class TestBarriers:
    def test_barrier_counts(self):
        m = machine(n=16)
        m.run(ScriptWorkload({}, barriers=3))
        assert m.barrier.barriers_completed == 3

    def test_barrier_joins_all_nodes(self):
        m = machine(n=9)
        finish = {}

        scripts = {node: [("compute", 100 * node), ("barrier",),
                          ("compute", 1)]
                   for node in range(9)}
        stats = m.run(ScriptWorkload(scripts))
        # No node can finish its tail compute before the slowest node
        # reaches the barrier.
        assert stats.run_cycles >= 800

    def test_tree_shape(self):
        m = machine(n=16)
        bar = m.barrier
        assert bar.parent(1) == 0
        assert bar.parent(4) == 0
        assert bar.parent(5) == 1
        assert bar.children(0) == [1, 2, 3, 4]
        assert bar.children(3) == [13, 14, 15]
        assert bar.expected(0) == 5


class TestCodeRegions:
    def test_register_code_assigns_disjoint_lines(self):
        m = machine()
        a = m.register_code("a", lines=2)
        b = m.register_code("b", lines=3)
        assert not set(a.offsets) & set(b.offsets)

    def test_register_code_idempotent(self):
        m = machine()
        a = m.register_code("a", lines=2)
        again = m.register_code("a", lines=2)
        assert a is again

    def test_code_blocks_are_per_node_and_same_colour(self):
        m = machine()
        a = m.register_code("a", lines=1)
        blocks = [a.blocks(node)[0] for node in range(4)]
        assert len(set(blocks)) == 4
        colours = {m.params.cache_set_of_block(b) for b in blocks}
        assert len(colours) == 1

    def test_is_code_block(self):
        m = machine()
        a = m.register_code("a", lines=1)
        assert m.is_code_block(a.blocks(2)[0])
        heap_addr = m.heap.alloc_block(2)
        assert not m.is_code_block(heap_addr >> m.params.block_shift)

    def test_code_region_exhaustion(self):
        m = machine(code_region_blocks=4)
        m.register_code("a", lines=4)
        with pytest.raises(ConfigurationError):
            m.register_code("b", lines=1)


class TestIfetch:
    def test_compute_with_code_fetches_instructions(self):
        m = machine()
        code = m.register_code("loop", lines=2)
        stats = m.run(ScriptWorkload({0: [("compute", 10, code)] * 3}))
        ns = stats.per_node[0]
        assert ns.ifetches == 6
        assert ns.cache_misses == 2  # cold misses only; then hits

    def test_perfect_ifetch_skips_the_cache(self):
        m = machine(perfect_ifetch=True)
        code = m.register_code("loop", lines=2)
        stats = m.run(ScriptWorkload({0: [("compute", 10, code)] * 3}))
        assert stats.per_node[0].ifetches == 0
        # Sequential accounting still charges them, so comparisons
        # between ifetch modes stay fair.
        assert m.seq_ifetches == 6

    def test_ifetch_conflicts_with_data(self):
        m = machine()
        code = m.register_code("loop", lines=1)
        addr = m.heap.alloc_block(0, color=code.cache_colors[0])
        ops = []
        for _ in range(5):
            ops.append(("compute", 5, code))
            ops.append(("read", addr))
        stats = m.run(ScriptWorkload({1: ops}))
        # Every iteration thrashes: code evicts data and vice versa.
        assert stats.per_node[1].cache_misses == 10


class TestHandlerSampleCollection:
    def test_samples_recorded(self):
        m = machine(n=16, protocol="DirnH1SNB,LACK")
        addr = m.heap.alloc_block(0)
        scripts = {node: [("compute", 50 * node), ("read", addr)]
                   for node in range(1, 4)}
        stats = m.run(ScriptWorkload(scripts))
        kinds = {s.kind for s in stats.handler_samples}
        assert "read" in kinds

    def test_collection_can_be_disabled(self):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH1SNB,LACK",
                    collect_handler_samples=False)
        stats = m.run(WorkerBenchmark(worker_set_size=4, iterations=1))
        assert stats.handler_samples == []
        assert stats.total_traps > 0
