"""Tests for the mesh topology and the contention-modelling fabric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.network.fabric import Fabric, Message
from repro.network.topology import Mesh
from repro.sim.engine import Simulator


class TestMesh:
    def test_coords_row_major(self):
        mesh = Mesh(16)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(15) == (3, 3)

    def test_node_at_inverts_coords(self):
        mesh = Mesh(16)
        for node in range(16):
            assert mesh.node_at(*mesh.coords(node)) == node

    def test_hops_manhattan(self):
        mesh = Mesh(16)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6
        assert mesh.hops(5, 10) == 2

    def test_route_dimension_ordered(self):
        mesh = Mesh(16)
        route = mesh.route(0, 10)
        assert route[0] == 0 and route[-1] == 10
        assert len(route) == mesh.hops(0, 10) + 1
        # X first, then Y.
        assert route == [0, 1, 2, 6, 10]

    def test_neighbours(self):
        mesh = Mesh(9)
        assert sorted(mesh.neighbours(4)) == [1, 3, 5, 7]
        assert sorted(mesh.neighbours(0)) == [1, 3]

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            Mesh(12)

    def test_out_of_range_rejected(self):
        mesh = Mesh(4)
        with pytest.raises(ConfigurationError):
            mesh.coords(4)
        with pytest.raises(ConfigurationError):
            mesh.node_at(5, 0)

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_hops_symmetric(self, a, b):
        mesh = Mesh(64)
        assert mesh.hops(a, b) == mesh.hops(b, a)

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_hops_triangle_inequality(self, a, b, c):
        mesh = Mesh(64)
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_route_length_matches_hops(self, a, b):
        # The sharded lookahead (repro.sim.windows) trusts hops() to be
        # the true per-hop transit count of route(); pin them together.
        mesh = Mesh(64)
        route = mesh.route(a, b)
        assert route[0] == a and route[-1] == b
        assert len(route) - 1 == mesh.hops(a, b)
        for u, v in zip(route, route[1:]):
            assert mesh.hops(u, v) == 1

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_hop_table_consistent_and_symmetric(self, a, b):
        mesh = Mesh(64)
        table = mesh.hop_table()
        n = mesh.n_nodes
        assert table[a * n + b] == mesh.hops(a, b)
        assert table[a * n + b] == table[b * n + a]

    @given(st.integers(min_value=0, max_value=15))
    def test_neighbours_are_exactly_the_one_hop_nodes(self, node):
        mesh = Mesh(16)
        one_hop = {other for other in range(16)
                   if mesh.hops(node, other) == 1}
        assert set(mesh.neighbours(node)) == one_hop


def _fabric(n=16, hop=1):
    sim = Simulator()
    mesh = Mesh(n)
    fabric = Fabric(sim, mesh, hop_latency=hop)
    inbox = {i: [] for i in range(n)}
    for i in range(n):
        fabric.attach(i, lambda m, i=i: inbox[i].append(m))
    return sim, fabric, inbox


class TestFabric:
    def test_uncontended_latency(self):
        sim, fabric, inbox = _fabric()
        msg = Message(src=0, dst=3, kind="x", size_flits=4)
        fabric.send(msg)
        sim.run()
        assert inbox[3][0] is msg
        # tx serialisation (4) + 3 hops + rx serialisation (4)
        assert msg.delivered_at == 4 + 3 + 4

    def test_loopback_is_fast(self):
        sim, fabric, inbox = _fabric()
        msg = Message(src=2, dst=2, kind="x", size_flits=9)
        fabric.send(msg)
        sim.run()
        assert msg.delivered_at == 1
        assert len(inbox[2]) == 1

    def test_loopback_fifo_despite_extra_delay(self):
        sim, fabric, inbox = _fabric()
        slow = Message(src=2, dst=2, kind="slow", size_flits=4)
        fast = Message(src=2, dst=2, kind="fast", size_flits=4)
        fabric.send(slow, extra_delay=10)
        fabric.send(fast)
        sim.run()
        # Loopback skips the transmit queue, so FIFO needs the clamp:
        # the late-composed message must not pass the earlier one.
        assert [m.kind for m in inbox[2]] == ["slow", "fast"]
        assert fast.delivered_at >= slow.delivered_at

    def test_tx_queue_serialises(self):
        sim, fabric, inbox = _fabric()
        a = Message(src=0, dst=3, kind="a", size_flits=4)
        b = Message(src=0, dst=12, kind="b", size_flits=4)
        fabric.send(a)
        fabric.send(b)
        sim.run()
        # Second message waits for the first to clear the transmit queue.
        assert b.delivered_at >= a.delivered_at  # same tx queue
        assert b.delivered_at == 8 + 3 + 4  # tx done at 8, 3 hops, rx 4

    def test_rx_queue_serialises(self):
        sim, fabric, inbox = _fabric()
        a = Message(src=1, dst=0, kind="a", size_flits=4)
        b = Message(src=4, dst=0, kind="b", size_flits=4)
        fabric.send(a)
        fabric.send(b)
        sim.run()
        assert a.delivered_at == 4 + 1 + 4
        # Both arrive at node 0 at the same instant; the receive queue
        # serialises them.
        assert b.delivered_at == a.delivered_at + 4

    def test_extra_delay_postpones_entry(self):
        sim, fabric, inbox = _fabric()
        msg = Message(src=0, dst=1, kind="a", size_flits=2)
        fabric.send(msg, extra_delay=10)
        sim.run()
        assert msg.delivered_at == 10 + 2 + 1 + 2

    def test_pair_fifo_despite_extra_delay(self):
        sim, fabric, inbox = _fabric()
        slow = Message(src=0, dst=5, kind="slow", size_flits=2)
        fast = Message(src=0, dst=5, kind="fast", size_flits=2)
        fabric.send(slow, extra_delay=50)
        fabric.send(fast)
        sim.run()
        assert fast.delivered_at >= slow.delivered_at  # FIFO per channel
        assert [m.kind for m in inbox[5]] == ["slow", "fast"]

    def test_flit_accounting(self):
        sim, fabric, inbox = _fabric()
        fabric.send(Message(src=0, dst=1, kind="a", size_flits=3))
        fabric.send(Message(src=1, dst=2, kind="b", size_flits=5))
        sim.run()
        assert fabric.flits_carried == 8
        assert fabric.messages_delivered == 2

    def test_unattached_receiver_raises(self):
        sim = Simulator()
        fabric = Fabric(sim, Mesh(4))
        fabric.send(Message(src=0, dst=1, kind="x", size_flits=1))
        with pytest.raises(RuntimeError):
            sim.run()

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=8),  # src
                  st.integers(min_value=0, max_value=8),  # dst
                  st.integers(min_value=1, max_value=12),  # size
                  st.integers(min_value=0, max_value=30)),  # extra delay
        min_size=1, max_size=40))
    def test_per_pair_fifo_property(self, sends):
        sim, fabric, inbox = _fabric(n=9)
        expected = {}
        for i, (src, dst, size, extra) in enumerate(sends):
            fabric.send(Message(src=src, dst=dst, kind=str(i),
                                size_flits=size), extra_delay=extra)
            expected.setdefault((src, dst), []).append(str(i))
        sim.run()
        got = {}
        for dst, messages in inbox.items():
            for m in messages:
                got.setdefault((m.src, m.dst), []).append(m.kind)
        assert got == expected
