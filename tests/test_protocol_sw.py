"""Scripted scenarios for the software-heavy protocols: the one-pointer
acknowledgement variants, the software-only directory, and Dir1SW."""

from repro.common.types import CacheState, DirState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams

from tests.helpers import ScriptWorkload, check_coherence

RO = CacheState.READ_ONLY
RW = CacheState.READ_WRITE
INV = CacheState.INVALID


def machine(n=16, protocol="DirnH1SNB,ACK", **overrides):
    return Machine(MachineParams(n_nodes=n, **overrides), protocol=protocol)


def shared_write_scenario(m, readers=3):
    """readers read a block on node 0, then node 9 writes it."""
    addr = m.heap.alloc_block(0)
    scripts = {}
    for i, node in enumerate(range(1, readers + 1)):
        scripts[node] = [("compute", 60 * i), ("read", addr), ("barrier",)]
    scripts[9] = [("barrier",), ("write", addr)]
    m.run(ScriptWorkload(scripts))
    return addr >> m.params.block_shift


class TestOnePointerVariants:
    """Section 2.4: the three acknowledgement-collection strategies."""

    def test_ack_variant_traps_on_every_ack(self):
        m = machine(protocol="DirnH1SNB,ACK")
        blk = shared_write_scenario(m, readers=3)
        home = m.nodes[0].stats
        # 3 invalidations -> 2 intermediate ack traps + 1 final.
        assert home.traps["ack_software"] == 2
        assert home.traps["ack_last"] == 1
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW

    def test_lack_variant_traps_once(self):
        m = machine(protocol="DirnH1SNB,LACK")
        blk = shared_write_scenario(m, readers=3)
        home = m.nodes[0].stats
        assert home.traps.get("ack_software", 0) == 0
        assert home.traps["ack_last"] == 1
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW

    def test_hardware_variant_never_traps_on_acks(self):
        m = machine(protocol="DirnH1SNB")
        blk = shared_write_scenario(m, readers=3)
        home = m.nodes[0].stats
        assert home.traps.get("ack_software", 0) == 0
        assert home.traps.get("ack_last", 0) == 0
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW

    def test_read_overflow_on_second_reader(self):
        m = machine(protocol="DirnH1SNB,LACK")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("read", addr)],
             2: [("compute", 80), ("read", addr)]},
        ))
        assert m.nodes[0].stats.traps["read_overflow"] == 1

    def test_variant_performance_ordering(self):
        """ACK must be slowest, hardware fastest (Figure 2's finding)."""
        cycles = {}
        for proto in ("DirnH1SNB,ACK", "DirnH1SNB,LACK", "DirnH1SNB"):
            m = machine(protocol=proto)
            shared_write_scenario(m, readers=8)
            cycles[proto] = m.sim.now
        assert cycles["DirnH1SNB"] <= cycles["DirnH1SNB,LACK"]
        assert cycles["DirnH1SNB,LACK"] <= cycles["DirnH1SNB,ACK"]


class TestDir1SW:
    """Section 2.5: Dir1H1SB,LACK (Wood et al.'s Dir1SW)."""

    def test_reads_never_trap(self):
        m = machine(protocol="Dir1H1SB,LACK")
        addr = m.heap.alloc_block(0)
        scripts = {node: [("compute", 50 * node), ("read", addr)]
                   for node in range(1, 10)}
        m.run(ScriptWorkload(scripts))
        assert m.nodes[0].stats.traps.get("read_overflow", 0) == 0
        # But the entry knows it lost track.
        blk = addr >> m.params.block_shift
        assert m.nodes[0].home.entries[blk].extended

    def test_write_broadcasts_to_all_nodes(self):
        m = machine(n=16, protocol="Dir1H1SB,LACK")
        blk = shared_write_scenario(m, readers=3)
        home = m.nodes[0].stats
        # Broadcast: every node except the writer is invalidated.
        assert home.invalidations_sw == 15
        assert home.traps["write_extended"] == 1
        assert home.traps["ack_last"] == 1
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW

    def test_single_copy_write_handled_in_hardware(self):
        m = machine(protocol="Dir1H1SB,LACK")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("read", addr), ("barrier",)],
             2: [("barrier",), ("write", addr)]},
        ))
        home = m.nodes[0].stats
        assert home.traps.get("write_extended", 0) == 0
        assert home.invalidations_hw == 1


class TestSoftwareOnly:
    """Section 2.3: the DirnH0SNB,ACK software-only directory."""

    def test_local_accesses_do_not_trap(self):
        m = machine(n=4, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(1)
        m.run(ScriptWorkload(
            {1: [("read", addr), ("write", addr), ("read", addr)]},
        ))
        assert sum(m.nodes[1].stats.traps.values()) == 0
        entry = m.nodes[1].home.entries[addr >> m.params.block_shift]
        assert not entry.remote_bit

    def test_remote_read_sets_bit_and_flushes_home_copy(self):
        m = machine(n=4, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(1)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload(
            {1: [("read", addr), ("barrier",)],
             2: [("barrier",), ("read", addr)]},
        ))
        entry = m.nodes[1].home.entries[blk]
        assert entry.remote_bit
        # The home's own cached copy was flushed (Section 2.3).
        assert m.nodes[1].cache_ctrl.state_of(blk) is INV
        assert m.nodes[2].cache_ctrl.state_of(blk) is RO

    def test_local_access_after_bit_set_traps(self):
        m = machine(n=4, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(1)
        m.run(ScriptWorkload(
            {2: [("read", addr), ("barrier",)],
             1: [("barrier",), ("read", addr)]},
        ))
        assert m.nodes[1].stats.traps["local_fault"] >= 1

    def test_remote_write_to_dirty_fetches_owner(self):
        m = machine(n=4, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload(
            {1: [("write", addr), ("barrier",)],
             2: [("barrier",), ("write", addr)]},
        ))
        assert m.nodes[1].cache_ctrl.state_of(blk) is INV
        assert m.nodes[2].cache_ctrl.state_of(blk) is RW
        entry = m.nodes[0].home.entries[blk]
        assert entry.state is DirState.READ_WRITE and entry.owner == 2

    def test_every_ack_traps(self):
        m = machine(n=16, protocol="DirnH0SNB,ACK")
        blk = shared_write_scenario(m, readers=4)
        home = m.nodes[0].stats
        assert home.traps["ack_software"] >= 3
        assert home.traps["ack_last"] >= 1
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW

    def test_all_protocol_work_is_software(self):
        m = machine(n=4, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("read", addr)], 2: [("compute", 100), ("read", addr)]},
        ))
        assert m.nodes[0].stats.invalidations_hw == 0
        assert m.nodes[0].stats.traps["remote_request"] >= 2

    def test_coherent_at_quiescence(self):
        m = machine(n=9, protocol="DirnH0SNB,ACK")
        addr = m.heap.alloc_block(0)
        scripts = {}
        for node in range(9):
            scripts[node] = [("compute", 30 * node), ("read", addr),
                             ("barrier",), ("write", addr)
                             if node == 5 else ("read", addr)]
        m.run(ScriptWorkload(scripts))
        assert check_coherence(m) == []


class TestWatchdog:
    def test_watchdog_enabled_only_for_software_ack_protocols(self):
        assert machine(protocol="DirnH0SNB,ACK").watchdog_enabled
        assert machine(protocol="DirnH1SNB,ACK").watchdog_enabled
        assert not machine(protocol="DirnH1SNB,LACK").watchdog_enabled
        assert not machine(protocol="DirnH5SNB").watchdog_enabled
        assert not machine(protocol="DirnHNBS-").watchdog_enabled

    def test_watchdog_fires_under_trap_storm(self):
        from repro.workloads.worker import WorkerBenchmark

        params = MachineParams(n_nodes=16, watchdog_threshold=1500,
                               watchdog_window=400)
        m = Machine(params, protocol="DirnH0SNB,ACK")
        stats = m.run(WorkerBenchmark(worker_set_size=15, iterations=2))
        assert stats.total("watchdog_activations") > 0
