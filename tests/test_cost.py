"""Tests for the directory cost analysis (the paper's cost axis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cost import (
    CostPerformancePoint,
    cost_performance_points,
    directory_bits_per_block,
    directory_overhead,
    extension_dram_bytes,
    full_map_scaling,
    pareto_frontier,
    pointer_width,
)
from repro.core.spec import ProtocolSpec
from repro.machine.params import MachineParams


class TestDirectoryBits:
    def test_full_map_is_one_bit_per_node(self):
        bits = directory_bits_per_block("DirnHNBS-", 64)
        assert bits == 64 + 4

    def test_software_only_is_one_bit(self):
        assert directory_bits_per_block("DirnH0SNB,ACK", 64) == 1

    def test_limited_uses_pointer_widths(self):
        # 5 pointers x 6 bits + local bit + overhead at 64 nodes
        assert directory_bits_per_block("DirnH5SNB", 64) == 5 * 6 + 1 + 4

    def test_pointer_width(self):
        assert pointer_width(2) == 1
        assert pointer_width(64) == 6
        assert pointer_width(65) == 7
        assert pointer_width(1) == 1

    @given(st.integers(min_value=2, max_value=1024))
    def test_full_map_dominates_at_scale(self, n):
        full = directory_bits_per_block("DirnHNBS-", n)
        limited = directory_bits_per_block("DirnH5SNB", n)
        if n >= 64:
            assert limited < full

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=4, max_value=512))
    def test_bits_monotonic_in_pointers(self, pointers, n):
        a = directory_bits_per_block(ProtocolSpec(hw_pointers=pointers), n)
        b = directory_bits_per_block(
            ProtocolSpec(hw_pointers=pointers + 1), n)
        assert b > a

    def test_overhead_fraction(self):
        params = MachineParams(n_nodes=64)
        overhead = directory_overhead("DirnH5SNB", params)
        assert overhead == pytest.approx(35 / 128)

    def test_scaling_table_crossover(self):
        rows = full_map_scaling((16, 64, 256))
        by_nodes = {n: (full, limited) for n, full, limited in rows}
        # Full map is cheaper on tiny machines, limited wins at scale —
        # the reason software extension matters for large systems.
        assert by_nodes[16][0] < by_nodes[16][1]
        assert by_nodes[256][0] > by_nodes[256][1]


class TestExtensionDram:
    def test_zero_when_nothing_extended(self):
        assert extension_dram_bytes(0, 0, 64) == 0

    def test_grows_with_chunks(self):
        small = extension_dram_bytes(1, 0, 64)
        large = extension_dram_bytes(10, 0, 64)
        assert large == 10 * small


class TestParetoAnalysis:
    def test_points_carry_costs(self):
        params = MachineParams(n_nodes=64)
        points = cost_performance_points(
            {"DirnH5SNB": 40.0, "DirnHNBS-": 45.0}, params)
        by_protocol = {p.protocol: p for p in points}
        assert by_protocol["DirnH5SNB"].bits_per_block == 35
        assert by_protocol["DirnHNBS-"].speedup == 45.0

    def test_dominated_point_excluded(self):
        points = [
            CostPerformancePoint("cheap", 10, 0.1, 20.0),
            CostPerformancePoint("dominated", 20, 0.2, 15.0),
            CostPerformancePoint("fast", 30, 0.3, 40.0),
        ]
        frontier = {p.protocol for p in pareto_frontier(points)}
        assert frontier == {"cheap", "fast"}

    def test_efficiency(self):
        point = CostPerformancePoint("x", 10, 0.1, 20.0)
        assert point.efficiency == pytest.approx(200.0)

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=100),
                              st.floats(min_value=0.1, max_value=100.0)),
                    min_size=1, max_size=20))
    def test_frontier_is_undominated(self, raw):
        points = [CostPerformancePoint(str(i), bits, bits / 128.0, speed)
                  for i, (bits, speed) in enumerate(raw)]
        frontier = pareto_frontier(points)
        for f in frontier:
            for other in points:
                assert not (other.bits_per_block < f.bits_per_block
                            and other.speedup > f.speedup)
