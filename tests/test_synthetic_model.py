"""The synthetic sharing generator, cross-checked against the analytic
overhead model and the simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.model import (
    predict_overhead,
    read_overflow_traps,
)
from repro.common.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.synthetic import SyntheticSharing, figure6_like_histogram

from tests.helpers import check_coherence


def run_synthetic(protocol, histogram, n=16, iterations=2,
                  write_fraction=1.0):
    machine = Machine(MachineParams(n_nodes=n), protocol=protocol)
    workload = SyntheticSharing(histogram, iterations=iterations,
                                write_fraction=write_fraction)
    stats = machine.run(workload)
    return machine, workload, stats


class TestSyntheticGenerator:
    def test_builds_requested_population(self):
        hist = {2: 5, 8: 3}
        _m, w, _s = run_synthetic("DirnHNBS-", hist)
        assert w.blocks_built == 8

    def test_worker_sets_match_request(self):
        hist = {3: 4}
        machine = Machine(MachineParams(n_nodes=16), protocol="DirnHNBS-",
                          track_worker_sets=True)
        workload = SyntheticSharing(hist, iterations=2, write_fraction=1.0)
        stats = machine.run(workload)
        observed = stats.worker_set_histogram
        # 3 readers + the writing home = worker sets of 4.
        assert observed == {4: 4}

    def test_sizes_capped_at_n_minus_1(self):
        _m, w, _s = run_synthetic("DirnHNBS-", {99: 2}, n=4)
        for reads in w.read_lists:
            pass  # built without error; every block has 3 readers
        total_reads = sum(len(r) for r in w.read_lists)
        assert total_reads == 2 * 3

    def test_zero_write_fraction_means_read_only(self):
        _m, _w, stats = run_synthetic("DirnHNBS-", {4: 6},
                                      write_fraction=0.0)
        assert stats.total("invalidations_hw") == 0

    def test_coherent_across_protocols(self):
        for protocol in ("DirnH5SNB", "DirnH1SNB,ACK", "DirnH0SNB,ACK"):
            machine, _w, _s = run_synthetic(protocol,
                                            figure6_like_histogram())
            assert check_coherence(machine) == []

    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticSharing({})
        with pytest.raises(ConfigurationError):
            SyntheticSharing({0: 5})
        with pytest.raises(ConfigurationError):
            SyntheticSharing({2: 3}, write_fraction=1.5)


class TestOverflowFormula:
    def test_fits_in_hardware(self):
        assert read_overflow_traps(worker_set=5, pointers=5) == 0
        assert read_overflow_traps(worker_set=1, pointers=5) == 0

    def test_first_overflow(self):
        assert read_overflow_traps(worker_set=6, pointers=5) == 1

    def test_refill_cadence(self):
        # After the first trap, every `pointers` new readers trap again.
        assert read_overflow_traps(worker_set=10, pointers=5) == 1
        assert read_overflow_traps(worker_set=11, pointers=5) == 2
        assert read_overflow_traps(worker_set=15, pointers=5) == 2
        assert read_overflow_traps(worker_set=16, pointers=5) == 3

    def test_one_pointer(self):
        # Every reader past the first traps.
        assert read_overflow_traps(worker_set=4, pointers=1) == 3

    def test_software_only(self):
        assert read_overflow_traps(worker_set=4, pointers=0) == 4

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=8))
    def test_monotonic_in_worker_set(self, w, k):
        assert (read_overflow_traps(w + 1, k)
                >= read_overflow_traps(w, k))

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=7))
    def test_monotonic_in_pointers(self, w, k):
        assert (read_overflow_traps(w, k + 1)
                <= read_overflow_traps(w, k))


class TestModelAgainstSimulation:
    """The analytic trap-count prediction matches the simulator exactly
    for the controlled synthetic traffic."""

    @pytest.mark.parametrize("protocol,histogram", [
        ("DirnH5SNB", {8: 4}),
        ("DirnH5SNB", {2: 6, 8: 2}),
        ("DirnH2SNB", {6: 5}),
        ("DirnH1SNB,LACK", {4: 3}),
    ])
    def test_read_overflow_traps_exact(self, protocol, histogram):
        iterations = 2
        _m, _w, stats = run_synthetic(protocol, histogram,
                                      iterations=iterations,
                                      write_fraction=1.0)
        predicted = predict_overhead(protocol, histogram,
                                     read_rounds=iterations,
                                     write_rounds=iterations)
        measured = stats.traps_by_kind()
        assert measured.get("read_overflow", 0) == predicted.read_traps
        assert measured.get("write_extended", 0) == predicted.write_traps

    def test_ack_trap_prediction(self):
        iterations = 2
        _m, _w, stats = run_synthetic("DirnH1SNB,ACK", {5: 3},
                                      iterations=iterations)
        predicted = predict_overhead("DirnH1SNB,ACK", {5: 3},
                                     read_rounds=iterations,
                                     write_rounds=iterations)
        measured = stats.traps_by_kind()
        measured_acks = (measured.get("ack_software", 0)
                         + measured.get("ack_last", 0))
        assert measured_acks == predicted.ack_traps

    def test_full_map_predicts_zero(self):
        predicted = predict_overhead("DirnHNBS-", {16: 100})
        assert predicted.total_traps == 0
        assert predicted.handler_cycles == 0

    def test_handler_cycles_close_to_measured(self):
        iterations = 2
        _m, _w, stats = run_synthetic("DirnH5SNB", {8: 4},
                                      iterations=iterations)
        predicted = predict_overhead("DirnH5SNB", {8: 4},
                                     read_rounds=iterations,
                                     write_rounds=iterations)
        measured = stats.total("handler_cycles")
        # Within 15%: the model ignores the per-trap dispatch overhead
        # and the small-set discounts of mixed-size moments.
        assert abs(measured - predicted.handler_cycles) <= 0.15 * measured
