"""Race-condition scenarios: events crafted to collide in flight.

These tests aim at the transitional windows of the protocol — write-backs
crossing fetches, invalidations chasing grants, retries racing stale
replies — where implementation bugs in directory protocols classically
hide.
"""

import pytest

from repro.common.types import CacheState
from repro.core.protocol import InvariantChecker
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.trace import ProtocolTracer

from tests.helpers import ScriptWorkload, check_coherence

RO = CacheState.READ_ONLY
RW = CacheState.READ_WRITE
INV = CacheState.INVALID


def machine(n=16, protocol="DirnH2SNB", **overrides):
    return Machine(MachineParams(n_nodes=n, **overrides), protocol=protocol)


def conflict_pair(m, home_a=0, home_b=1):
    """Two blocks that map to the same direct-mapped cache set."""
    a = m.heap.alloc_block(home_a)
    color = m.params.cache_set_of_block(a >> m.params.block_shift)
    b = m.heap.alloc_block(home_b, color=color)
    return a, b


class TestWritebackRaces:
    @pytest.mark.parametrize("protocol",
                             ["DirnH2SNB", "DirnH5SNB", "DirnHNBS-",
                              "DirnH1SNB,LACK", "DirnH0SNB,ACK"])
    def test_writeback_crossing_fetch(self, protocol):
        """Node 2 dirties a block then immediately evicts it (conflict),
        while node 3 requests it — the write-back and the fetch cross in
        flight for a range of relative timings."""
        for delay in range(0, 60, 7):
            m = machine(protocol=protocol)
            a, b = conflict_pair(m)
            blk = a >> m.params.block_shift
            m.run(ScriptWorkload({
                2: [("write", a), ("read", b)],  # evict dirty a
                3: [("compute", delay), ("read", a)],
            }))
            assert m.nodes[3].cache_ctrl.state_of(blk) in (RO, RW)
            assert check_coherence(m) == []

    def test_owner_rerequests_its_own_block_after_eviction(self):
        m = machine()
        a, b = conflict_pair(m)
        m.run(ScriptWorkload({
            2: [("write", a), ("read", b), ("write", a)],
        }))
        blk = a >> m.params.block_shift
        assert m.nodes[2].cache_ctrl.state_of(blk) is RW
        assert m.nodes[0].home.entries[blk].owner == 2

    def test_two_nodes_ping_pong_dirty_block(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        ops_a, ops_b = [], []
        for _ in range(6):
            ops_a.append(("write", addr))
            ops_a.append(("compute", 17))
            ops_b.append(("write", addr))
            ops_b.append(("compute", 23))
        m.run(ScriptWorkload({2: ops_a, 3: ops_b}))
        assert check_coherence(m) == []


class TestGrantRaces:
    @pytest.mark.parametrize("delay", [0, 5, 11, 23, 41, 80])
    def test_invalidation_chasing_grant(self, delay):
        """A writer invalidates while a reader's grant is still in
        flight; per-channel FIFO must keep them ordered."""
        m = machine()
        addr = m.heap.alloc_block(0)
        tracer = ProtocolTracer.attach(m)
        m.run(ScriptWorkload({
            2: [("read", addr)],
            3: [("compute", delay), ("write", addr)],
        }))
        assert tracer.verify() == []
        assert check_coherence(m) == []

    def test_many_readers_race_one_writer(self):
        for protocol in ("DirnH5SNB", "DirnH1SNB,ACK"):
            m = machine(protocol=protocol)
            addr = m.heap.alloc_block(0)
            scripts = {node: [("compute", 3 * node), ("read", addr)]
                       for node in range(1, 12)}
            scripts[12] = [("compute", 20), ("write", addr)]
            m.run(ScriptWorkload(scripts))
            assert check_coherence(m) == []

    def test_simultaneous_upgrades(self):
        """Two sharers upgrade at once: exactly one write wins first and
        the other retries; both eventually succeed."""
        m = machine()
        addr = m.heap.alloc_block(0)
        stats = m.run(ScriptWorkload({
            2: [("read", addr), ("barrier",), ("write", addr)],
            3: [("read", addr), ("barrier",), ("write", addr)],
        }))
        blk = addr >> m.params.block_shift
        owners = [n for n in (2, 3)
                  if m.nodes[n].cache_ctrl.state_of(blk) is RW]
        assert len(owners) == 1
        assert check_coherence(m) == []


class TestH0Races:
    def test_local_eviction_after_remote_bit_set(self):
        """The home dirties its own block, a remote touch sets the bit,
        then the home's dirty copy is conflict-evicted: the write-back
        must be handled by software without corrupting state."""
        m = machine(protocol="DirnH0SNB,ACK", n=4)
        a, b = conflict_pair(m, home_a=1, home_b=2)
        blk = a >> m.params.block_shift
        m.run(ScriptWorkload({
            1: [("write", a), ("barrier",), ("read", b)],  # evicts dirty a
            3: [("barrier",), ("compute", 200), ("read", a)],
        }))
        entry = m.nodes[1].home.entries[blk]
        assert entry.remote_bit
        assert m.nodes[3].cache_ctrl.state_of(blk) in (RO, RW)
        assert check_coherence(m) == []

    def test_h0_request_storm_on_one_block(self):
        m = machine(protocol="DirnH0SNB,ACK", n=16)
        addr = m.heap.alloc_block(0)
        scripts = {}
        for node in range(1, 16):
            kind = "write" if node % 3 == 0 else "read"
            scripts[node] = [("compute", node), (kind, addr),
                             ("compute", 9), (kind, addr)]
        m.run(ScriptWorkload(scripts))
        assert check_coherence(m) == []


#: One hardware-directory point and the software-only directory: the
#: same scripted event sequences must survive both backends of the
#: table-driven engine (plus the full map as the no-overflow control).
ENGINE_BACKENDS = ["DirnH2SNB", "DirnHNBS-", "DirnH0SNB,ACK"]


class TestEngineRaces:
    """Identical event sequences through both engine backends, with the
    continuous invariant checker riding every run."""

    @pytest.mark.parametrize("protocol", ENGINE_BACKENDS)
    def test_evict_writeback_races_inflight_fetch(self, protocol):
        """Node 2 owns the block dirty; node 3's read makes the home
        fetch from node 2 while node 2 conflict-evicts the same block —
        the EVICT_WB and the FETCH_RD cross in flight.  Swept over
        relative timings so the collision lands in different windows."""
        for delay in range(0, 48, 5):
            m = machine(protocol=protocol)
            checker = InvariantChecker.attach(m)
            a, b = conflict_pair(m)
            blk = a >> m.params.block_shift
            m.run(ScriptWorkload({
                2: [("write", a), ("compute", delay), ("read", b)],
                3: [("compute", 14), ("read", a)],
            }))
            assert m.nodes[3].cache_ctrl.state_of(blk) in (RO, RW)
            assert check_coherence(m) == []
            checker.finish()
            assert checker.violations == []
            assert checker.transitions_checked > 0

    @pytest.mark.parametrize("protocol", ENGINE_BACKENDS)
    def test_relinquish_races_busy_write_transaction(self, protocol):
        """Node 2 holds a clean copy and conflict-evicts it (RELINQ)
        while node 3's write has the home mid-invalidation for the same
        block: the check-in races both the in-flight INV and the busy
        directory state."""
        for delay in range(0, 48, 5):
            m = machine(protocol=protocol)
            checker = InvariantChecker.attach(m)
            a, b = conflict_pair(m)
            m.run(ScriptWorkload({
                2: [("read", a), ("compute", delay), ("read", b)],
                3: [("compute", 11), ("write", a)],
            }))
            blk = a >> m.params.block_shift
            assert m.nodes[3].cache_ctrl.state_of(blk) is RW
            assert check_coherence(m) == []
            checker.finish()
            assert checker.violations == []

    @pytest.mark.parametrize("protocol", ENGINE_BACKENDS)
    def test_same_sequence_single_writer_and_deterministic(self, protocol):
        """A mixed read/write/evict sequence through each backend: at
        most one writable copy survives, the run is clean under the
        continuous checker, and replaying it reproduces the same final
        cache states (the engine is deterministic)."""
        def run_once():
            m = machine(protocol=protocol)
            checker = InvariantChecker.attach(m)
            a, b = conflict_pair(m)
            m.run(ScriptWorkload({
                1: [("read", a), ("barrier",), ("read", a)],
                2: [("write", a), ("barrier",), ("read", b), ("read", a)],
                3: [("barrier",), ("write", a), ("read", a)],
            }))
            blk = a >> m.params.block_shift
            states = {n: m.nodes[n].cache_ctrl.state_of(blk)
                      for n in (1, 2, 3)}
            assert check_coherence(m) == []
            checker.finish()
            assert checker.violations == []
            return states

        first = run_once()
        writers = [n for n, st in first.items() if st is RW]
        assert len(writers) <= 1
        assert any(st is not INV for st in first.values())
        assert run_once() == first


class TestBroadcastRaces:
    def test_broadcast_write_races_fresh_readers(self):
        """Dir1SW broadcast invalidations hit nodes that never cached
        the block; everyone must still acknowledge."""
        m = machine(protocol="Dir1H1SB,LACK")
        addr = m.heap.alloc_block(0)
        tracer = ProtocolTracer.attach(m)
        scripts = {node: [("compute", 10 * node), ("read", addr)]
                   for node in range(1, 6)}
        scripts[7] = [("compute", 25), ("write", addr)]
        m.run(ScriptWorkload(scripts))
        assert tracer.verify() == []
        assert check_coherence(m) == []
