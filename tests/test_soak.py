"""Soak tests (marked slow): sustained adversarial traffic with full
verification — transcript checking, coherence checking, determinism —
across the whole protocol spectrum at once."""

import pytest

from repro.core.spec import PAPER_SPECTRUM
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.trace import ProtocolTracer

from tests.helpers import VersionedWorkload, check_coherence

ALL_PROTOCOLS = list(PAPER_SPECTRUM) + ["Dir1H1SB,LACK"]


@pytest.mark.slow
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_soak_sustained_contention(protocol):
    machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
    tracer = ProtocolTracer.attach(machine)
    stats = machine.run(
        VersionedWorkload(ops_per_node=400, blocks=12, seed=2024,
                          write_ratio=0.45, barrier_every=100),
        max_events=20_000_000,
    )
    assert check_coherence(machine) == []
    assert tracer.verify() == []
    assert stats.total("loads") + stats.total("stores") == 16 * 400


@pytest.mark.slow
@pytest.mark.parametrize("protocol",
                         ["DirnH5SNB", "DirnH1SNB,ACK", "DirnH0SNB,ACK"])
def test_soak_with_every_option_enabled(protocol):
    """All the optional machinery at once: victim cache, link-level
    network, migratory detection, dynamic invalidation, worker-set
    tracking, profiling."""
    from repro.analysis.profiling import AccessProfiler

    machine = Machine(
        MachineParams(n_nodes=16, victim_cache_enabled=True),
        protocol=protocol,
        invalidation_mode="dynamic",
        network_model="links",
        migratory_detection=(protocol != "DirnH0SNB,ACK"),
        track_worker_sets=True,
    )
    machine.profiler = AccessProfiler()
    stats = machine.run(
        VersionedWorkload(ops_per_node=250, blocks=10, seed=7,
                          write_ratio=0.4, barrier_every=50),
        max_events=20_000_000,
    )
    assert check_coherence(machine) == []
    assert stats.worker_set_histogram
    assert len(machine.profiler) > 0


@pytest.mark.slow
def test_soak_determinism_with_all_features():
    def run():
        machine = Machine(
            MachineParams(n_nodes=9, victim_cache_enabled=True),
            protocol="DirnH5SNB", invalidation_mode="dynamic",
            migratory_detection=True)
        stats = machine.run(VersionedWorkload(
            ops_per_node=300, blocks=8, seed=99, write_ratio=0.5))
        return (stats.run_cycles, stats.total_traps,
                tuple(sorted(stats.messages_by_kind().items())))

    assert run() == run()


@pytest.mark.slow
def test_soak_256_nodes():
    machine = Machine(MachineParams(n_nodes=256), protocol="DirnH5SNB")
    stats = machine.run(
        VersionedWorkload(ops_per_node=40, blocks=64, seed=4,
                          write_ratio=0.3),
        max_events=50_000_000,
    )
    assert check_coherence(machine) == []
    assert stats.n_nodes == 256
