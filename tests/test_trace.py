"""Tests for the protocol tracer and its transcript checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import PAPER_SPECTRUM
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.trace import ProtocolTracer, TraceRecord

from tests.helpers import ScriptWorkload, VersionedWorkload


def machine(n=9, protocol="DirnH2SNB"):
    return Machine(MachineParams(n_nodes=n), protocol=protocol)


class TestRecording:
    def test_messages_recorded_with_times(self):
        m = machine()
        tracer = ProtocolTracer.attach(m)
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)]}))
        kinds = tracer.counts()
        assert kinds["rreq"] == 1
        assert kinds["rdata"] == 1
        for record in tracer.records:
            assert record.delivered_at >= record.sent_at

    def test_block_filter(self):
        m = machine()
        a = m.heap.alloc_block(0)
        b = m.heap.alloc_block(0)
        blk_a = a >> m.params.block_shift
        tracer = ProtocolTracer.attach(m, blocks={blk_a})
        m.run(ScriptWorkload({1: [("read", a), ("read", b)]}))
        assert {r.block for r in tracer.records} == {blk_a}

    def test_for_block(self):
        m = machine()
        a = m.heap.alloc_block(0)
        tracer = ProtocolTracer.attach(m)
        m.run(ScriptWorkload({1: [("read", a)], 2: [("write", a)]}))
        blk = a >> m.params.block_shift
        assert all(r.block == blk for r in tracer.for_block(blk))
        assert len(tracer.for_block(blk)) >= 3


class TestDetach:
    def test_detach_restores_original_send(self):
        m = machine()
        original = m.fabric.send
        tracer = ProtocolTracer.attach(m)
        assert m.fabric.send != original
        assert tracer.attached
        tracer.detach()
        assert "send" not in m.fabric.__dict__  # class method restored
        assert m.fabric.send == original
        assert not tracer.attached

    def test_detach_stops_recording(self):
        m = machine()
        tracer = ProtocolTracer.attach(m)
        tracer.detach()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)]}))
        assert tracer.records == []

    def test_detach_is_idempotent(self):
        m = machine()
        tracer = ProtocolTracer.attach(m)
        tracer.detach()
        tracer.detach()
        assert not tracer.attached

    def test_chained_tracers_both_record(self):
        m = machine()
        first = ProtocolTracer.attach(m)
        second = ProtocolTracer.attach(m)
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)]}))
        assert first.counts() == second.counts()
        assert first.counts()["rreq"] == 1

    def test_inner_detach_keeps_outer_recording(self):
        m = machine()
        inner = ProtocolTracer.attach(m)
        outer = ProtocolTracer.attach(m)
        inner.detach()  # wrapped by outer: becomes a pass-through
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)]}))
        assert inner.records == []
        assert outer.counts()["rreq"] == 1

    def test_lifo_detach_fully_unwinds(self):
        m = machine()
        original = m.fabric.send
        inner = ProtocolTracer.attach(m)
        outer = ProtocolTracer.attach(m)
        outer.detach()
        inner.detach()
        assert "send" not in m.fabric.__dict__
        assert m.fabric.send == original


class TestCheckerCatchesViolations:
    def test_double_ownership_detected(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "wdata", 0, 2, 7),
        ]
        problems = tracer.verify()
        assert any("while 1 still owns" in p for p in problems)

    def test_legal_handoff_passes(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "fetch_data", 1, 0, 7),
            TraceRecord(31, 40, "wdata", 0, 2, 7),
        ]
        assert tracer.verify() == []

    def test_spurious_ack_detected(self):
        tracer = ProtocolTracer()
        tracer.records = [TraceRecord(0, 5, "ack", 3, 0, 9)]
        problems = tracer.verify()
        assert any("acked more" in p for p in problems)

    def test_unanswered_request_detected(self):
        tracer = ProtocolTracer()
        tracer.records = [TraceRecord(0, 5, "rreq", 3, 0, 9)]
        problems = tracer.verify()
        assert any("never got a reply" in p for p in problems)

    def test_rdata_while_another_node_owns_detected(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "rdata", 0, 2, 7),
        ]
        problems = tracer.verify()
        assert any("RDATA to 2" in p and "while 1 owns" in p
                   for p in problems)

    def test_ownership_released_by_writeback(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "evict_wb", 1, 0, 7),
            TraceRecord(31, 40, "wdata", 0, 2, 7),
        ]
        assert tracer.verify() == []

    def test_ack_preceded_by_inv_passes(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 5, "inv", 0, 3, 9),
            TraceRecord(6, 11, "ack", 3, 0, 9),
        ]
        assert tracer.verify() == []

    def test_excess_acks_beyond_invs_detected(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 5, "inv", 0, 3, 9),
            TraceRecord(6, 11, "ack", 3, 0, 9),
            TraceRecord(12, 17, "ack", 3, 0, 9),
        ]
        problems = tracer.verify()
        assert any("acked more" in p for p in problems)

    def test_busy_reply_answers_a_request(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 5, "wreq", 3, 0, 9),
            TraceRecord(6, 11, "busy", 0, 3, 9),
        ]
        assert tracer.verify() == []

    def test_all_three_rules_reported_from_one_stream(self):
        tracer = ProtocolTracer()
        tracer.records = [
            # rule 1: double ownership on block 7
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "wdata", 0, 2, 7),
            # rule 2: ack with no preceding inv on block 8
            TraceRecord(0, 5, "ack", 3, 0, 8),
            # rule 3: unanswered request on block 9
            TraceRecord(0, 5, "wreq", 4, 0, 9),
        ]
        problems = tracer.verify()
        assert any("while 1 still owns" in p for p in problems)
        assert any("acked more" in p for p in problems)
        assert any("never got a reply" in p for p in problems)
        assert len(problems) == 3

    def test_violations_scoped_per_block(self):
        tracer = ProtocolTracer()
        tracer.records = [
            TraceRecord(0, 10, "wdata", 0, 1, 7),
            TraceRecord(20, 30, "wdata", 0, 2, 7),
            # a clean stream on another block stays clean
            TraceRecord(0, 10, "wdata", 0, 1, 8),
        ]
        problems = tracer.verify()
        assert len(problems) == 1
        assert "block 7" in problems[0]


@pytest.mark.parametrize("protocol",
                         list(PAPER_SPECTRUM) + ["Dir1H1SB,LACK"])
def test_real_transcripts_verify_clean(protocol):
    m = Machine(MachineParams(n_nodes=9), protocol=protocol)
    tracer = ProtocolTracer.attach(m)
    m.run(VersionedWorkload(ops_per_node=50, blocks=5, seed=17,
                            write_ratio=0.5))
    assert tracer.verify() == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31),
       write_ratio=st.floats(min_value=0.0, max_value=1.0))
def test_limitless_transcripts_verify_under_random_traffic(seed,
                                                           write_ratio):
    m = Machine(MachineParams(n_nodes=4), protocol="DirnH5SNB")
    tracer = ProtocolTracer.attach(m)
    m.run(VersionedWorkload(ops_per_node=40, blocks=4, seed=seed,
                            write_ratio=write_ratio))
    assert tracer.verify() == []
