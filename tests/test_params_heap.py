"""Tests for machine parameters and the shared heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import AllocationError, ConfigurationError
from repro.machine.heap import SharedHeap
from repro.machine.params import WORD_BYTES, MachineParams


class TestParams:
    def test_defaults_describe_alewife(self):
        p = MachineParams()
        assert p.cache_bytes == 64 * 1024
        assert p.block_bytes == 16
        assert p.block_words == 4
        assert p.cache_sets == 4096
        assert p.local_mem_words * WORD_BYTES == 4 * 1024 * 1024

    def test_mesh_side(self):
        assert MachineParams(n_nodes=64).mesh_side == 8
        assert MachineParams(n_nodes=1).mesh_side == 1

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(n_nodes=10)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(n_nodes=0)

    def test_bad_cache_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(cache_bytes=60 * 1024, block_bytes=16)
        with pytest.raises(ConfigurationError):
            MachineParams(block_bytes=10)

    def test_code_region_must_fit(self):
        with pytest.raises(ConfigurationError):
            MachineParams(code_region_blocks=1 << 30)

    def test_home_mapping(self):
        p = MachineParams(n_nodes=4)
        assert p.home_of_addr(0) == 0
        assert p.home_of_addr(p.local_mem_words) == 1
        assert p.home_of_block(p.local_mem_blocks * 3) == 3
        assert p.node_base_addr(2) == 2 * p.local_mem_words

    def test_cache_set_of_block(self):
        p = MachineParams()
        assert p.cache_set_of_block(0) == 0
        assert p.cache_set_of_block(p.cache_sets + 5) == 5

    def test_with_updates(self):
        p = MachineParams().with_updates(n_nodes=4, perfect_ifetch=True)
        assert p.n_nodes == 4 and p.perfect_ifetch

    @given(st.integers(min_value=0, max_value=2 ** 24))
    def test_home_and_block_consistent(self, addr):
        p = MachineParams(n_nodes=16)
        block = addr >> p.block_shift
        assert p.home_of_addr(addr) == p.home_of_block(block)


class TestHeap:
    def make(self, n_nodes=4):
        params = MachineParams(n_nodes=n_nodes)
        return params, SharedHeap(params, reserved_blocks=512)

    def test_alloc_is_block_aligned(self):
        params, heap = self.make()
        addr = heap.alloc(0, 3)
        assert addr % params.block_words == 0

    def test_alloc_stays_in_segment(self):
        params, heap = self.make()
        addr = heap.alloc(2, 10)
        assert params.home_of_addr(addr) == 2
        assert params.home_of_addr(addr + 9) == 2

    def test_allocations_do_not_overlap(self):
        params, heap = self.make()
        a = heap.alloc(1, 7)
        b = heap.alloc(1, 7)
        assert b >= a + 7

    def test_colour_lands_on_requested_set(self):
        params, heap = self.make()
        addr = heap.alloc(0, 4, color=123)
        block = addr >> params.block_shift
        assert params.cache_set_of_block(block) == 123

    def test_colour_out_of_range(self):
        _params, heap = self.make()
        with pytest.raises(AllocationError):
            heap.alloc(0, 4, color=1 << 20)

    def test_bad_node(self):
        _params, heap = self.make()
        with pytest.raises(AllocationError):
            heap.alloc(99, 4)

    def test_bad_size(self):
        _params, heap = self.make()
        with pytest.raises(AllocationError):
            heap.alloc(0, 0)

    def test_exhaustion(self):
        params, heap = self.make()
        with pytest.raises(AllocationError):
            heap.alloc(0, params.local_mem_words)

    def test_origins_staggered_across_nodes(self):
        params = MachineParams(n_nodes=64)
        heap = SharedHeap(params, reserved_blocks=512)
        sets = set()
        for node in range(64):
            addr = heap.alloc(node, 4)
            sets.add(params.cache_set_of_block(addr >> params.block_shift))
        # "The same" allocation on every node must not alias to one set.
        assert len(sets) > 32

    def test_words_used(self):
        _params, heap = self.make()
        heap.alloc(0, 4)
        heap.alloc(0, 4)
        assert heap.words_used(0) == 8
        assert heap.words_used(1) == 0

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=1, max_value=64)),
                    min_size=1, max_size=100))
    def test_no_overlaps_property(self, allocations):
        params, heap = self.make()
        spans = []
        for node, words in allocations:
            addr = heap.alloc(node, words)
            for start, end in spans:
                assert addr >= end or addr + words <= start
            spans.append((addr, addr + words))
