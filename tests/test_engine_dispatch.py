"""Dispatch edge cases, identical under both engine modes.

The protocol engine has two executions of the same table — the
interpreted reference walk and the exec-compiled specialized code
(:mod:`repro.core.protocol.compile`).  These tests pin the corners of
row *selection* where the two implementations could plausibly diverge,
parametrized over all three directory backends and both dispatch
modes:

- ``when_missing`` selection: a ``get``-policy event for a block with
  no directory entry sees only the wildcard rows (and an ``ignore``
  fallback swallows the event entirely);
- wildcard-row merge order: wildcard rows interleave with
  state-specific rows in *table order*, they are not appended;
- ``strict`` policies: an unmatched event raises through the backend's
  ``no_rule`` hook, both on missing entries and on entries whose state
  has no matching row.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState
from repro.core.messages import ProtoPayload
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.network.fabric import Message

#: One protocol per backend class: FullMapBackend, LimitedPointerBackend
#: (hardware table), SoftwareOnlyBackend (software-only table).
PROTOCOLS = {
    "full_map": "DirnHNBS-",
    "limited": "DirnH5SNB",
    "software_only": "DirnH0SNB,ACK",
}
HW_BACKENDS = ["full_map", "limited"]
ALL_BACKENDS = list(PROTOCOLS)
DISPATCH_PARAMS = ["compiled", "interpreted"]


def _home(backend: str, dispatch: str):
    """A 4-node machine's node 0 plus a data block it is home for."""
    machine = Machine(MachineParams(n_nodes=4),
                      protocol=PROTOCOLS[backend], dispatch=dispatch)
    node = machine.nodes[0]
    block = machine.params.code_region_blocks + 8
    assert machine.params.home_of_block(block) == 0
    return node, block


def _msg(kind: str, src: int, block: int) -> Message:
    return Message(src=src, dst=0, kind=kind, size_flits=2,
                   payload=ProtoPayload(block=block, requester=src))


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
@pytest.mark.parametrize("backend", HW_BACKENDS)
def test_when_missing_ignore_fallback(backend, dispatch):
    """relinq (get + ignore) on an absent entry is swallowed whole: no
    rows match, no entry is created, nothing is sent."""
    node, block = _home(backend, dispatch)
    sent_before = sum(node.stats.messages_sent.values())
    node.home.handle(_msg("relinq", 1, block))
    assert block not in node.home.entries
    assert sum(node.stats.messages_sent.values()) == sent_before


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
def test_when_missing_wildcard_guard_fires(dispatch):
    """The software-only flush_ack row is a wildcard whose guard
    tolerates ``entry=None`` — it must be selected for an absent entry."""
    node, block = _home("software_only", dispatch)
    backend = node.home.backend
    backend._flush_acks[block] = 2
    node.home.handle(_msg("ack", 1, block))
    assert backend._flush_acks[block] == 1
    assert block not in node.home.entries
    node.home.handle(_msg("ack", 1, block))
    assert block not in backend._flush_acks


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_strict_no_rule_on_missing_entry(backend, dispatch):
    """ack (get + error) with no entry and no matching wildcard row
    must raise through the backend's no_rule hook."""
    node, block = _home(backend, dispatch)
    with pytest.raises(ProtocolStateError):
        node.home.handle(_msg("ack", 1, block))
    assert block not in node.home.entries


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_strict_no_rule_on_unmatched_state(backend, dispatch):
    """fetch_data only has rows for transaction states; delivering it
    to a READ_ONLY entry must raise, not fall through silently."""
    node, block = _home(backend, dispatch)
    node.home.handle(_msg("rreq", 1, block))
    entry = node.home.entries[block]
    assert entry.state is DirState.READ_ONLY
    with pytest.raises(ProtocolStateError):
        node.home.handle(_msg("fetch_data", 1, block))


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
@pytest.mark.parametrize("backend", HW_BACKENDS)
def test_wildcard_row_precedes_state_rows(backend, dispatch):
    """The hardware busy row is a wildcard declared *before* the
    READ_ONLY rows: with a software handler pending it must win over
    read_record even though the state-specific row also matches."""
    node, block = _home(backend, dispatch)
    node.home.handle(_msg("rreq", 1, block))
    entry = node.home.entries[block]
    assert entry.state is DirState.READ_ONLY

    entry.sw_pending = True  # busy guard now passes in READ_ONLY
    busy_before = node.stats.busy_replies
    node.home.handle(_msg("rreq", 2, block))
    assert node.stats.busy_replies == busy_before + 1
    assert not entry.has_pointer(2)

    entry.sw_pending = False  # same message now reaches read_record
    node.home.handle(_msg("rreq", 2, block))
    assert node.stats.busy_replies == busy_before + 1
    assert entry.has_pointer(2)


@pytest.mark.parametrize("dispatch", DISPATCH_PARAMS)
def test_wildcard_rows_keep_table_order(dispatch):
    """Two wildcard rreq rows in the software-only table: the guarded
    local fast path is declared first and must be tried first — the
    home's own first read takes no trap and leaves the remote-access
    bit clear."""
    node, block = _home("software_only", dispatch)
    traps_before = sum(node.stats.traps.values())
    node.home.handle(_msg("rreq", 0, block))
    entry = node.home.entries[block]
    assert entry.state is DirState.READ_ONLY
    assert not entry.remote_bit
    assert sum(node.stats.traps.values()) == traps_before

    # A remote reader fails the local_private guard and falls through
    # to the general (trapping) grant row.
    node.home.handle(_msg("rreq", 1, block))
    assert entry.remote_bit
    assert sum(node.stats.traps.values()) == traps_before + 1
