"""Stateful property-based tests (hypothesis rule-based machines).

Two model-based checkers: the cache system against a reference dict
model, and the directory entry against a reference sharer-set model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.cache import DirectMappedCache
from repro.common.errors import ProtocolStateError
from repro.common.types import CacheState
from repro.core.directory import DirectoryEntry

BLOCKS = st.integers(min_value=0, max_value=120)
STATES = st.sampled_from([CacheState.READ_ONLY, CacheState.READ_WRITE])


class CacheModel(RuleBasedStateMachine):
    """The cache must agree with a simple mapping model.

    The model tracks the state of every block the cache *may* still
    hold; the cache may have evicted it (capacity), but must never hold
    a block in a state the model disagrees with, and must never hold a
    block the model considers invalidated.
    """

    def __init__(self):
        super().__init__()
        self.cache = DirectMappedCache(16, victim_entries=2)
        self.model = {}  # block -> CacheState last installed
        self.dropped = set()  # blocks invalidated by the "protocol"

    @rule(block=BLOCKS, state=STATES)
    def fill(self, block, state):
        evicted = self.cache.fill(block, state)
        self.model[block] = state
        self.dropped.discard(block)
        for ev in evicted:
            # An eviction's reported state must match the model's.
            assert ev.state == self.model[ev.block]
            del self.model[ev.block]

    @rule(block=BLOCKS)
    def lookup(self, block):
        state, _victim = self.cache.lookup(block)
        if state is not CacheState.INVALID:
            assert block in self.model
            assert self.model[block] == state

    @rule(block=BLOCKS)
    def invalidate(self, block):
        prior = self.cache.invalidate(block)
        if block in self.model:
            assert prior == self.model[block]
            del self.model[block]
        else:
            assert prior is CacheState.INVALID
        self.dropped.add(block)

    @rule(block=BLOCKS)
    def downgrade(self, block):
        prior = self.cache.downgrade(block)
        if prior is not CacheState.INVALID:
            assert self.model[block] == prior
            self.model[block] = CacheState.READ_ONLY

    @invariant()
    def residents_are_modeled(self):
        for block in self.cache.resident_blocks():
            assert block in self.model
            assert block not in self.dropped

    @invariant()
    def capacity_respected(self):
        assert len(self.cache.resident_blocks()) <= 16 + 2


class DirectoryModel(RuleBasedStateMachine):
    """Directory pointer bookkeeping against a reference sharer set."""

    NODES = st.integers(min_value=0, max_value=9)

    def __init__(self):
        super().__init__()
        self.entry = DirectoryEntry(capacity=3, block=1, home=0,
                                    use_local_bit=True)
        self.sharers = set()

    @rule(node=NODES)
    def record_if_possible(self, node):
        if self.entry.can_record(node):
            self.entry.record(node)
            self.sharers.add(node)
        else:
            try:
                self.entry.record(node)
            except ProtocolStateError:
                pass
            else:  # pragma: no cover
                raise AssertionError("record succeeded past capacity")

    @rule(node=NODES)
    def drop(self, node):
        self.entry.drop(node)
        self.sharers.discard(node)

    @rule()
    def empty_into_software(self):
        taken = self.entry.take_all_pointers()
        assert set(taken) == {n for n in self.sharers if n != 0}
        keep_home = 0 in self.sharers and self.entry.local_bit
        self.sharers = {0} if keep_home else set()

    @invariant()
    def sharer_set_matches(self):
        assert self.entry.sharer_set() == self.sharers

    @invariant()
    def pointer_capacity_respected(self):
        assert len(self.entry.pointers) <= 3


TestCacheModel = CacheModel.TestCase
TestCacheModel.settings = settings(max_examples=40,
                                   stateful_step_count=60,
                                   deadline=None)

TestDirectoryModel = DirectoryModel.TestCase
TestDirectoryModel.settings = settings(max_examples=40,
                                       stateful_step_count=60,
                                       deadline=None)
