"""Mutation tests for the protocol model checker.

The checker is only worth its CI minutes if seeded table corruptions
are *caught*; each test below plants one distinct bug class and
asserts the expected finding code comes back (with a witness trace
where exploration is involved).
"""

import dataclasses

import pytest

import repro.core.messages as msg
from repro.core.protocol.table import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    Transition,
)
from repro.core.spec import AckMode, ProtocolSpec
from repro.verify.abstract import (
    AbstractHardwareHome,
    AbstractSoftwareOnlyHome,
    DirState,
    ModelConfig,
)
from repro.verify.modelcheck import (
    MIN_STATES,
    check_config,
    coverage_findings,
    default_configs,
    run_model_check,
    static_table_findings,
)

# Small, fast configurations (each still explores >= MIN_STATES when
# clean; corrupted runs stop at the first finding).
HW2 = ModelConfig(
    "hw 1-pointer, 2 nodes",
    ProtocolSpec(hw_pointers=1, sw_extension=True, local_bit=False,
                 ack_mode=AckMode.HARDWARE),
    n_nodes=2)
LACK3 = ModelConfig(
    "hw 1-pointer LACK, 3 nodes",
    ProtocolSpec(hw_pointers=1, sw_extension=True, local_bit=True,
                 ack_mode=AckMode.LAST_SOFTWARE),
    n_nodes=3, drop_budget=0)
SW3 = ModelConfig(
    "software-only, 3 nodes",
    ProtocolSpec(hw_pointers=0, sw_extension=True, local_bit=False,
                 ack_mode=AckMode.SOFTWARE),
    n_nodes=3, drop_budget=0)
SW2 = ModelConfig(
    "software-only, 2 nodes",
    ProtocolSpec(hw_pointers=0, sw_extension=True, local_bit=False,
                 ack_mode=AckMode.SOFTWARE),
    n_nodes=2)


def mutate_rows(table, predicate, **changes):
    """Replace fields on every row matching ``predicate``; with
    ``drop=True`` remove it instead."""
    drop = changes.pop("drop", False)
    rows = []
    hits = 0
    for row in table.transitions:
        if predicate(row):
            hits += 1
            if drop:
                continue
            row = dataclasses.replace(row, **changes)
        rows.append(row)
    assert hits, "mutation matched no row — the seed is stale"
    return dataclasses.replace(table, transitions=tuple(rows))


def codes_of(findings):
    return sorted({f.code for f in findings})


# ----------------------------------------------------------------------
# Clean baseline
# ----------------------------------------------------------------------


def test_shipped_tables_are_clean_on_small_configs():
    for cfg in (SW2, HW2):
        result = check_config(cfg)
        assert result.findings == [], codes_of(result.findings)
        assert result.states >= MIN_STATES
        assert not result.capped


def test_default_suite_meets_state_floor_spec():
    # The shipped suite is what CI runs; every config must be able to
    # clear the acceptance floor.  (Exploring all of them takes ~a
    # minute — CI does that; here we check the suite's shape.)
    configs = default_configs()
    assert len(configs) >= 6
    assert any(c.n_nodes >= 3 for c in configs)
    assert any(c.spec.is_software_only for c in configs)
    assert any(c.spec.full_map for c in configs)
    assert any(c.invalidation_mode == "sequential" for c in configs)


def test_quick_subset_runs_clean_via_run_model_check():
    configs = [c for c in default_configs()
               if c.n_nodes <= 2 and c.spec.is_software_only]
    report = run_model_check(configs, coverage=False)
    assert report.clean, codes_of(report.findings)
    assert report.stats["modelcheck.states_total"] >= MIN_STATES


# ----------------------------------------------------------------------
# Seeded mutations — each must be caught
# ----------------------------------------------------------------------


def test_mutation_wrong_next_state_claim():
    bad = mutate_rows(HARDWARE_TABLE,
                      lambda r: r.action == "read_record",
                      next_state="read_write")
    result = check_config(HW2, table=bad, max_findings=1)
    assert "claim" in codes_of(result.findings)
    assert result.findings[0].trace, "claim finding lost its witness"


def test_mutation_missing_completion_row():
    bad = mutate_rows(HARDWARE_TABLE,
                      lambda r: r.action == "ack_complete",
                      drop=True)
    result = check_config(HW2, table=bad, max_findings=1)
    # Without the completion row the final ack falls through to the
    # underflow trap (or the write sticks forever) — either way the
    # checker must object.
    assert set(codes_of(result.findings)) & {"state-error", "stuck"}


def test_mutation_missing_busy_row():
    bad = mutate_rows(HARDWARE_TABLE,
                      lambda r: r.event == msg.WREQ and r.guard == "busy",
                      drop=True)
    result = check_config(HW2, table=bad, max_findings=1)
    assert "totality" in codes_of(result.findings)


def test_mutation_grant_without_invalidation():
    # Swap the invalidation action for a plain exclusive grant (claim
    # kept consistent so only the *semantics* are wrong): a sharer's
    # copy survives a write — lost invalidation.
    bad = mutate_rows(HARDWARE_TABLE,
                      lambda r: r.action == "write_invalidate",
                      action="write_absent", next_state="read_write")
    result = check_config(HW2, table=bad, max_findings=1)
    assert "safety" in codes_of(result.findings)
    assert result.findings[0].trace


def test_mutation_dropped_ack_decrement():
    class NoDecrement(AbstractHardwareHome):
        def ack_countdown(self, e, src):
            pass

    result = check_config(LACK3, home_cls=NoDecrement, max_findings=1)
    assert "stuck" in codes_of(result.findings)


def test_mutation_false_unreachable_annotation():
    marked = mutate_rows(HARDWARE_TABLE,
                         lambda r: r.action == "read_record",
                         unreachable=True)
    result = check_config(HW2, table=marked)
    cov = coverage_findings(marked, result.fired_rows, coverage=False)
    assert "unreachable-fired" in codes_of(cov)


def test_mutation_flush_ack_not_absorbed():
    # Regression for the software-only flush-ack aliasing bug: if a
    # pending home-copy flush is not absorbed into a later write's
    # ack count, the flush's ack completes the write one INV early.
    class NoAbsorb(AbstractSoftwareOnlyHome):
        def write_invalidate(self, e, src):
            self._note_remote(e, src)
            targets = set(e.sharers)
            targets.discard(src)
            e.state = DirState.WRITE_TRANSACTION
            e.pending_requester = src
            e.sw_ack_count = len(targets)
            e.sharers = set()
            self._defer_sends(
                [(msg.INV, "wt", t) for t in sorted(targets)])

    result = check_config(SW3, home_cls=NoAbsorb, max_findings=1)
    assert "safety" in codes_of(result.findings)
    assert any("lost invalidation" in f.message
               for f in result.findings)


def test_mutation_relinquish_settles_during_pending_handler():
    # Regression for the eager _settle_relinquish bug: resetting the
    # entry while a read-overflow handler is pending lets the handler
    # complete into an ABSENT entry.
    class EagerSettle(AbstractHardwareHome):
        def _settle_relinquish(self, e):
            if not e.extended and not self.sharer_set(e):
                self.reset_to_absent(e)

    result = check_config(HW2, home_cls=EagerSettle, max_findings=1)
    assert "wellformed" in codes_of(result.findings)


# ----------------------------------------------------------------------
# Static checks
# ----------------------------------------------------------------------


def test_static_check_catches_unresolved_action():
    bad = mutate_rows(HARDWARE_TABLE,
                      lambda r: r.action == "read_record",
                      action="no_such_action")
    assert "unresolved-name" in codes_of(static_table_findings(bad))


def test_static_check_catches_orphan_event():
    orphan = Transition("nonesuch", None, "read_absent")
    bad = dataclasses.replace(
        HARDWARE_TABLE,
        transitions=HARDWARE_TABLE.transitions + (orphan,))
    assert "orphan-row" in codes_of(static_table_findings(bad))


def test_static_checks_clean_on_shipped_tables():
    assert static_table_findings(HARDWARE_TABLE) == []
    assert static_table_findings(SOFTWARE_ONLY_TABLE) == []


def test_state_cap_is_a_finding():
    result = check_config(SW2, max_states=100)
    assert result.capped
    assert "limit" in codes_of(result.findings)
