"""Tests for cycle-accounting attribution (repro.obs.attribution) and
cross-run diffing (repro.analysis.regression).

The headline acceptance property: on the 16-node WORKER stress test the
bucket totals sum *exactly* to the run's total stall cycles — every
stall cycle lands in exactly one named bucket, residual zero.
"""

import json

import pytest

from repro.analysis.regression import diff_attributions, format_diff
from repro.core.software.costmodel import CostModel, HandlerCost
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.obs import (
    BUCKETS,
    AttributionReport,
    SpanCollector,
    attribute_stall,
    attribution_dict,
)
from repro.obs.events import (
    HandlerSpan,
    MessageSent,
    StallSpan,
    TrapPosted,
)
from repro.obs.spans import TransactionTrace
from repro.workloads.worker import WorkerBenchmark


def attributed_worker(protocol="DirnH2SNB", size=6, iterations=2):
    machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
    collector = SpanCollector.attach(machine)
    stats = machine.run(WorkerBenchmark(worker_set_size=size,
                                        iterations=iterations))
    return stats, AttributionReport.build(collector)


def synthetic_trace(stall, messages=(), handlers=(), traps=()):
    trace = TransactionTrace(stall.txn)
    trace.stall = stall
    trace.messages.extend(messages)
    trace.handlers.extend(handlers)
    trace.traps.extend(traps)
    return trace


# ----------------------------------------------------------------------
# Single-stall decomposition on hand-built traces
# ----------------------------------------------------------------------


class TestAttributeStall:
    def test_plain_read_miss(self):
        # request out, home thinks, data back: three phases, no gaps
        # unaccounted.
        stall = StallSpan(node=0, start=0, end=100, kind="read",
                          block=7, txn=1)
        trace = synthetic_trace(stall, messages=[
            MessageSent(0, 1, "rreq", 2, 5, 15, block=7, txn=1),
            MessageSent(1, 0, "rdata", 18, 80, 100, block=7, txn=1),
        ])
        parts = attribute_stall(stall, trace)
        assert parts == {
            "cache_lookup": 5,       # before the request leaves
            "network_transit": 30,   # rreq 10 + rdata 20
            "home_occupancy": 65,    # the home holds the transaction
        }
        assert sum(parts.values()) == stall.latency

    def test_busy_retry_backoff(self):
        stall = StallSpan(node=0, start=0, end=50, kind="read",
                          block=7, txn=1)
        trace = synthetic_trace(stall, messages=[
            MessageSent(0, 1, "rreq", 2, 0, 10, block=7, txn=1),
            MessageSent(1, 0, "busy", 2, 10, 20, block=7, txn=1),
            MessageSent(0, 1, "rreq", 2, 30, 40, block=7, txn=1),
            MessageSent(1, 0, "rdata", 18, 40, 50, block=7, txn=1),
        ])
        parts = attribute_stall(stall, trace)
        # busy flight + the gap after its delivery are both retry time
        assert parts == {"network_transit": 30, "retry": 20}
        assert sum(parts.values()) == 50

    def test_trap_dispatch_and_handler(self):
        stall = StallSpan(node=0, start=0, end=100, kind="read",
                          block=7, txn=1)
        trace = synthetic_trace(
            stall,
            messages=[
                MessageSent(0, 1, "rreq", 2, 0, 10, block=7, txn=1),
                MessageSent(1, 0, "rdata", 18, 60, 100, block=7, txn=1),
            ],
            handlers=[HandlerSpan(1, 30, 60, "read", "flexible", 2, 30,
                                  txn=1)],
            traps=[TrapPosted(1, "read", 10, 30, 2, txn=1)],
        )
        parts = attribute_stall(stall, trace)
        assert parts == {
            "network_transit": 50,
            "trap_dispatch": 20,      # posted at 10, started at 30
            "handler_execution": 30,
        }
        assert sum(parts.values()) == 100

    def test_inv_fanout_outranks_ack_gather(self):
        stall = StallSpan(node=0, start=0, end=100, kind="write",
                          block=7, txn=1)
        trace = synthetic_trace(stall, messages=[
            MessageSent(0, 1, "wreq", 2, 0, 10, block=7, txn=1),
            MessageSent(1, 2, "inv", 2, 10, 30, block=7, txn=1),
            MessageSent(2, 1, "ack", 2, 20, 40, block=7, txn=1),
            MessageSent(1, 0, "wdata", 18, 40, 100, block=7, txn=1),
        ])
        parts = attribute_stall(stall, trace)
        # the inv/ack overlap [20,30) counts as fan-out, not gathering
        assert parts == {
            "network_transit": 70,
            "inv_fanout": 20,
            "ack_gather": 10,
        }
        assert sum(parts.values()) == 100

    def test_non_miss_stalls_map_wholesale(self):
        for kind, bucket in (("ifetch", "ifetch_fill"),
                             ("lock", "lock_wait"),
                             ("reduce", "reduce_wait"),
                             ("sw_wait", "sw_context_wait")):
            stall = StallSpan(node=3, start=10, end=35, kind=kind)
            assert attribute_stall(stall, None) == {bucket: 25}

    def test_empty_stall_is_empty(self):
        assert attribute_stall(
            StallSpan(node=0, start=5, end=5, kind="read"), None) == {}

    def test_traceless_miss_is_cache_lookup(self):
        # only possible when message events were not recorded
        stall = StallSpan(node=0, start=0, end=40, kind="read", txn=9)
        assert attribute_stall(stall, None) == {"cache_lookup": 40}


# ----------------------------------------------------------------------
# The acceptance property: exact accounting on real runs
# ----------------------------------------------------------------------


class TestExactAccounting:
    def test_worker16_buckets_sum_to_total_stall_cycles(self):
        # One hardware-pointer config, the paper's stress test.
        stats, report = attributed_worker(protocol="DirnH2SNB")
        total_stall = stats.total("stall_cycles")
        assert total_stall > 0
        assert report.total_cycles == total_stall
        assert sum(report.totals.values()) == total_stall
        assert report.residual == 0

    @pytest.mark.parametrize("protocol", [
        "DirnH5SNB", "DirnH1SNB,ACK", "DirnHNBS-",
    ])
    def test_exact_across_the_spectrum(self, protocol):
        stats, report = attributed_worker(protocol=protocol,
                                          size=4, iterations=1)
        assert report.total_cycles == stats.total("stall_cycles")
        assert report.residual == 0

    def test_software_protocol_exercises_sw_buckets(self):
        _stats, report = attributed_worker(protocol="DirnH1SNB,ACK",
                                           size=4, iterations=1)
        assert report.totals.get("handler_execution", 0) > 0
        assert report.totals.get("trap_dispatch", 0) > 0
        assert report.totals.get("retry", 0) > 0

    def test_by_stall_kind_is_consistent(self):
        _stats, report = attributed_worker(size=4, iterations=1)
        for kind, parts in report.by_stall_kind.items():
            for bucket in parts:
                assert bucket in BUCKETS
        rollup = {}
        for parts in report.by_stall_kind.values():
            for bucket, cycles in parts.items():
                rollup[bucket] = rollup.get(bucket, 0) + cycles
        assert rollup == report.totals


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------


class TestAttributionDict:
    def test_shape_and_invariants(self):
        _stats, report = attributed_worker(size=4, iterations=1)
        doc = attribution_dict(report, config={"app": "worker"})
        assert doc["schema"] == "repro-attribution/1"
        assert doc["config"] == {"app": "worker"}
        assert doc["residual"] == 0
        assert set(doc["buckets"]) == set(BUCKETS)
        assert sum(doc["buckets"].values()) == doc["stall_cycles"]
        assert doc["counts"]["transactions"] > 0
        for bucket, share in doc["shares"].items():
            assert 0.0 <= share <= 1.0
        for bucket, summary in doc["percentiles"].items():
            assert summary["count"] > 0
            assert summary["p50"] <= summary["p99"] <= summary["max"]

    def test_artifact_is_byte_deterministic(self):
        _s1, r1 = attributed_worker(size=4, iterations=1)
        _s2, r2 = attributed_worker(size=4, iterations=1)
        blob1 = json.dumps(attribution_dict(r1), sort_keys=True)
        blob2 = json.dumps(attribution_dict(r2), sort_keys=True)
        assert blob1 == blob2


# ----------------------------------------------------------------------
# Cross-run diffing
# ----------------------------------------------------------------------


class TestDiff:
    def test_identical_runs_diff_to_zero(self):
        _s1, r1 = attributed_worker(size=4, iterations=1)
        _s2, r2 = attributed_worker(size=4, iterations=1)
        doc = diff_attributions(attribution_dict(r1),
                                attribution_dict(r2))
        assert doc["ok"]
        assert doc["regressions"] == []
        assert doc["stall_cycles"]["delta"] == 0
        for row in doc["buckets"].values():
            assert row["delta"] == 0
            assert not row["flagged"]
        assert "OK" in format_diff(doc)

    def test_rejects_non_attribution_artifacts(self):
        with pytest.raises(ValueError):
            diff_attributions({"schema": "repro-metrics/1"}, {})

    def test_seeded_handler_slowdown_lands_in_its_bucket(self,
                                                        monkeypatch):
        # Baseline, then re-run with every read-overflow handler 10
        # cycles slower.  The diff must attribute the growth to
        # handler_execution — not report it as unexplained drift.
        _s0, r0 = attributed_worker(protocol="DirnH1SNB,ACK",
                                    size=4, iterations=1)
        baseline = attribution_dict(r0)

        original = CostModel.read_overflow

        def slower(self, pointers_emptied, small=False):
            cost = original(self, pointers_emptied, small)
            breakdown = dict(cost.breakdown)
            breakdown["protocol-specific dispatch"] = (
                breakdown.get("protocol-specific dispatch", 0) + 10)
            return HandlerCost(cost.latency + 10, breakdown,
                               cost.per_message_spacing)

        monkeypatch.setattr(CostModel, "read_overflow", slower)
        _s1, r1 = attributed_worker(protocol="DirnH1SNB,ACK",
                                    size=4, iterations=1)
        perturbed = attribution_dict(r1)

        grown = (perturbed["buckets"]["handler_execution"]
                 - baseline["buckets"]["handler_execution"])
        assert grown > 0

        doc = diff_attributions(baseline, perturbed,
                                rel_threshold=0.01, abs_floor=50)
        assert not doc["ok"]
        assert "handler_execution" in doc["regressions"]
        assert doc["buckets"]["handler_execution"]["flagged"]
        assert "REGRESSED" in format_diff(doc)

    def test_improvements_never_fail(self):
        _s0, r0 = attributed_worker(size=4, iterations=1)
        base = attribution_dict(r0)
        better = json.loads(json.dumps(base))
        better["buckets"]["handler_execution"] = 0
        doc = diff_attributions(base, better, abs_floor=0)
        assert doc["ok"]
        assert "handler_execution" in doc["improvements"]

    def test_per_bucket_threshold_override(self):
        _s0, r0 = attributed_worker(size=4, iterations=1)
        base = attribution_dict(r0)
        worse = json.loads(json.dumps(base))
        worse["buckets"]["retry"] = base["buckets"]["retry"] + 1000
        strict = diff_attributions(base, worse, rel_threshold=1000.0,
                                   abs_floor=10,
                                   bucket_thresholds={"retry": 0.0})
        assert "retry" in strict["regressions"]
        lax = diff_attributions(base, worse, rel_threshold=0.0,
                                abs_floor=10,
                                bucket_thresholds={"retry": 1e9})
        assert "retry" not in lax["regressions"]
