"""Tests for the optional link-level network model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.network.detailed import DetailedFabric
from repro.network.fabric import Fabric, Message
from repro.network.topology import Mesh
from repro.sim.engine import Simulator

from tests.helpers import VersionedWorkload, check_coherence


def fabrics(n=16):
    sim = Simulator()
    mesh = Mesh(n)
    detailed = DetailedFabric(sim, mesh)
    inbox = {i: [] for i in range(n)}
    for i in range(n):
        detailed.attach(i, lambda m, i=i: inbox[i].append(m))
    return sim, detailed, inbox


class TestDetailedFabric:
    def test_uncontended_latency_close_to_simple(self):
        sim_a = Simulator()
        simple = Fabric(sim_a, Mesh(16))
        simple.attach(3, lambda m: None)
        msg_simple = Message(src=0, dst=3, kind="x", size_flits=4)
        simple.send(msg_simple)
        sim_a.run()

        sim_b, detailed, _ = fabrics()
        msg_detailed = Message(src=0, dst=3, kind="x", size_flits=4)
        detailed.send(msg_detailed)
        sim_b.run()
        assert abs(msg_detailed.delivered_at
                   - msg_simple.delivered_at) <= 4

    def test_shared_link_serialises(self):
        _sim, detailed, _ = fabrics()
        # Both messages traverse link (1 -> 2) under X-then-Y routing.
        a = Message(src=0, dst=3, kind="a", size_flits=6)
        b = Message(src=1, dst=3, kind="b", size_flits=6)
        detailed.send(a)
        detailed.send(b)
        assert detailed.link_wait_cycles > 0
        assert b.delivered_at > a.delivered_at

    def test_disjoint_routes_do_not_interact(self):
        _sim, detailed, _ = fabrics()
        detailed.send(Message(src=0, dst=1, kind="a", size_flits=6))
        before = detailed.link_wait_cycles
        detailed.send(Message(src=14, dst=15, kind="b", size_flits=6))
        assert detailed.link_wait_cycles == before

    def test_pair_fifo_preserved(self):
        sim, detailed, inbox = fabrics()
        detailed.send(Message(src=0, dst=5, kind="slow", size_flits=2),
                      extra_delay=50)
        detailed.send(Message(src=0, dst=5, kind="fast", size_flits=2))
        sim.run()
        assert [m.kind for m in inbox[5]] == ["slow", "fast"]

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=15),
                  st.integers(min_value=0, max_value=15),
                  st.integers(min_value=1, max_value=10)),
        min_size=1, max_size=30))
    def test_all_messages_delivered(self, sends):
        sim, detailed, inbox = fabrics()
        for i, (src, dst, size) in enumerate(sends):
            detailed.send(Message(src=src, dst=dst, kind=str(i),
                                  size_flits=size))
        sim.run()
        assert sum(len(v) for v in inbox.values()) == len(sends)


class TestMachineIntegration:
    def test_unknown_model_rejected(self):
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Machine(MachineParams(n_nodes=4), protocol="DirnH2SNB",
                    network_model="carrier-pigeon")

    @pytest.mark.parametrize("protocol",
                             ["DirnH5SNB", "DirnH0SNB,ACK", "DirnHNBS-"])
    def test_coherent_under_link_contention(self, protocol):
        machine = Machine(MachineParams(n_nodes=9), protocol=protocol,
                          network_model="links")
        machine.run(VersionedWorkload(ops_per_node=40, blocks=5, seed=3,
                                      write_ratio=0.4))
        assert check_coherence(machine) == []

    def test_link_model_is_deterministic(self):
        def run():
            machine = Machine(MachineParams(n_nodes=9),
                              protocol="DirnH2SNB", network_model="links")
            stats = machine.run(VersionedWorkload(
                ops_per_node=30, blocks=4, seed=9, write_ratio=0.4))
            return stats.run_cycles

        assert run() == run()

    def test_link_contention_never_speeds_things_up(self):
        def run(model):
            machine = Machine(MachineParams(n_nodes=16),
                              protocol="DirnH5SNB", network_model=model)
            from repro.workloads.worker import WorkerBenchmark
            stats = machine.run(WorkerBenchmark(worker_set_size=8,
                                                iterations=2))
            return stats.run_cycles

        assert run("links") >= run("queues") * 0.95
