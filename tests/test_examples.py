"""Smoke tests: every shipped example runs to completion and prints the
output its docstring promises."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=()) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / f"{name}.py"), *argv]
    buffer = io.StringIO()
    try:
        with redirect_stdout(buffer):
            spec.loader.exec_module(module)
            module.main()
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart")
    assert "DirnH5SNB" in out
    assert "full-map" in out or "DirnHNBS-" in out


def test_protocol_spectrum_small():
    out = run_example("protocol_spectrum", ["aq", "16"])
    assert "AQ on 16 nodes" in out
    assert "Directory bits/block" in out


def test_worker_sets():
    out = run_example("worker_sets")
    assert "Worker-set sizes" in out
    assert "Directory coverage" in out


def test_custom_workload():
    out = run_example("custom_workload")
    assert "RingPipeline" in out


def test_locks_and_migration():
    out = run_example("locks_and_migration")
    assert "Lock acquisitions" in out
    assert "faster" in out


@pytest.mark.slow
def test_thrashing_tsp():
    out = run_example("thrashing_tsp")
    assert "Figure 3 reproduction" in out


@pytest.mark.slow
def test_annotated_protocols():
    out = run_example("annotated_protocols")
    assert "EVOLVE on 64 nodes" in out
    assert "closing" in out


def test_design_space():
    out = run_example("design_space")
    assert "Analytic model vs simulation" in out
