"""Tests for the sharded parallel-in-time runtime.

Three contracts under test:

- the window math (:mod:`repro.sim.windows`) is sound: partitions
  cover the nodes, lookahead comes from the true minimum cross-shard
  mesh distance, and the window never collapses to zero;
- sharded execution (:mod:`repro.sim.shard`) is *byte-identical* to
  the serial engine — cycle counts, per-node statistics, handler
  samples, worker-set histograms, fabric counters, and attribution
  artifacts — at any shard count, including more shards than cores;
- everything the sharded runtime cannot reproduce exactly (link-level
  contention, profilers, advance subscribers, run bounds, invariant
  checking) is refused loudly instead of silently diverging.
"""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeadlockError,
    SimulationError,
)
from repro.exec import JobRunner, make_job
from repro.exec.jobs import execute_job
from repro.machine.machine import Machine
from repro.machine import params as params_mod
from repro.machine.params import MachineParams, resolve_shards
from repro.network.topology import Mesh
from repro.obs.fleet import FleetMonitor, FleetTelemetry, event
from repro.sim.windows import (
    min_cross_shard_hops,
    owner_of_nodes,
    partition_nodes,
    window_length,
)
from repro.workloads.base import Workload
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import VersionedWorkload


# ----------------------------------------------------------------------
# Window math
# ----------------------------------------------------------------------

class TestWindows:
    def test_partition_covers_nodes_contiguously(self):
        shards = partition_nodes(16, 3)
        assert [len(s) for s in shards] == [6, 5, 5]
        assert [n for shard in shards for n in shard] == list(range(16))

    def test_partition_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            partition_nodes(16, 0)
        with pytest.raises(ConfigurationError):
            partition_nodes(4, 5)

    def test_owner_matches_partition(self):
        owner = owner_of_nodes(16, 4)
        for shard, nodes in enumerate(partition_nodes(16, 4)):
            assert all(owner[n] == shard for n in nodes)

    def test_min_hops_adjacent_rows(self):
        # Splitting a 4x4 mesh in half puts rows 0-1 and 2-3 in
        # different shards; the closest cross-shard pair is vertically
        # adjacent.
        mesh = Mesh(16)
        assert min_cross_shard_hops(mesh, owner_of_nodes(16, 2)) == 1

    def test_min_hops_single_shard_is_diameter(self):
        # No cross-shard pair exists; the (unused) lookahead is the
        # full mesh diameter: 3 + 3 hops across a 4x4 mesh.
        mesh = Mesh(16)
        assert min_cross_shard_hops(mesh, owner_of_nodes(16, 1)) == 6

    def test_min_hops_brute_force(self):
        mesh = Mesh(16)
        for n_shards in (2, 3, 5, 16):
            owner = owner_of_nodes(16, n_shards)
            expected = min(
                mesh.hops(a, b)
                for a in range(16) for b in range(16)
                if owner[a] != owner[b]
            )
            assert min_cross_shard_hops(mesh, owner) == expected

    def test_window_length(self):
        assert window_length(2, 1, 3) == 5
        assert window_length(2, 2, 1) == 4
        # Floored at one cycle so degenerate parameters still advance.
        assert window_length(0, 0, 0) == 1


# ----------------------------------------------------------------------
# Byte-identity with the serial engine
# ----------------------------------------------------------------------

def _run(workload, shards, protocol="DirnH5SNB", n_nodes=16, **kwargs):
    machine = Machine(MachineParams(n_nodes=n_nodes), protocol=protocol,
                      shards=shards, **kwargs)
    stats = machine.run(workload)
    return machine, stats


_SERIAL_CACHE = {}


def _serial(key, workload_factory, **kwargs):
    if key not in _SERIAL_CACHE:
        _SERIAL_CACHE[key] = _run(workload_factory(), 1, **kwargs)
    return _SERIAL_CACHE[key]


class TestByteIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_worker_benchmark_matches_serial(self, shards):
        def workload():
            return WorkerBenchmark(worker_set_size=6, iterations=2)

        serial_machine, serial = _serial(
            "worker16", workload, track_worker_sets=True)
        machine, stats = _run(workload(), shards, track_worker_sets=True)
        assert stats.to_json_dict() == serial.to_json_dict()
        assert stats.handler_samples == serial.handler_samples
        assert (machine.worker_set_histogram()
                == serial_machine.worker_set_histogram())
        assert (machine.fabric.messages_delivered
                == serial_machine.fabric.messages_delivered)
        assert (machine.fabric.flits_carried
                == serial_machine.fabric.flits_carried)
        assert (machine.barrier.barriers_completed
                == serial_machine.barrier.barriers_completed)
        assert machine.sim.now == serial_machine.sim.now

    @pytest.mark.parametrize("protocol", ["DirnH5SNB", "full-map"])
    def test_adversarial_traffic_matches_serial(self, protocol):
        def workload():
            return VersionedWorkload(ops_per_node=60, blocks=8, seed=3,
                                     write_ratio=0.4, barrier_every=20)

        _, serial = _serial(f"versioned9-{protocol}", workload,
                            protocol=protocol, n_nodes=9)
        _, stats = _run(workload(), 3, protocol=protocol, n_nodes=9)
        assert stats.to_json_dict() == serial.to_json_dict()

    def test_attribution_artifact_matches_serial(self):
        # The attribution pipeline rides the observability bus; the
        # sharded engine records per-shard event streams and replays
        # the merge through the parent bus, so the artifact must come
        # out identical.
        job = make_job(WorkerBenchmark,
                       dict(worker_set_size=4, iterations=1),
                       protocol="DirnH5SNB", n_nodes=16,
                       attribution=True)
        serial = execute_job(job, shards=1)
        sharded = execute_job(job, shards=4)
        assert serial.attribution is not None
        assert sharded.attribution == serial.attribution

    def test_serial_only_workload_falls_back_byte_identically(self):
        # EVOLVE's thread op streams couple through Python state
        # (the shared visit-counter cadence), so it declares
        # shard_safe=False and a sharded machine silently runs it on
        # the serial engine instead of diverging.
        from repro.workloads.evolve import Evolve

        assert Evolve.shard_safe is False
        assert WorkerBenchmark.shard_safe is True

        def workload():
            return Evolve(dimensions=6, walks_per_node=2, seed=11)

        serial_machine, serial = _serial(
            "evolve9", workload, n_nodes=9, track_worker_sets=True)
        machine, stats = _run(workload(), 3, n_nodes=9,
                              track_worker_sets=True)
        assert stats.to_json_dict() == serial.to_json_dict()
        assert (machine.worker_set_histogram()
                == serial_machine.worker_set_histogram())

    def test_run_sharded_rejects_serial_only_workload(self):
        # Defense in depth: calling the sharded runtime directly with
        # a shard_safe=False workload is a hard error, not a silently
        # wrong run.
        from repro.sim.shard import run_sharded
        from repro.workloads.evolve import Evolve

        machine = Machine(MachineParams(n_nodes=9), shards=1)
        with pytest.raises(ConfigurationError, match="shard_safe"):
            run_sharded(machine, Evolve(dimensions=6, walks_per_node=1),
                        3)

    def test_deadlock_detected_across_shards(self):
        class Unbalanced(Workload):
            name = "unbalanced"

            def setup(self, machine):
                pass

            def thread(self, machine, node_id):
                if node_id == 0:
                    yield ("barrier",)
                else:
                    yield ("compute", 5)

        with pytest.raises(DeadlockError, match="blocked processors"):
            _run(Unbalanced(), 2, n_nodes=4)


# ----------------------------------------------------------------------
# Unsupported configurations are refused, not silently wrong
# ----------------------------------------------------------------------

def _machine(shards=2, n_nodes=4, **kwargs):
    return Machine(MachineParams(n_nodes=n_nodes), protocol="DirnH5SNB",
                   shards=shards, **kwargs)


def _tiny():
    return WorkerBenchmark(worker_set_size=2, iterations=1)


class TestRestrictions:
    def test_links_network_model_refused(self):
        machine = _machine(network_model="links")
        with pytest.raises(ConfigurationError, match="queues"):
            machine.run(_tiny())

    def test_profiler_refused(self):
        machine = _machine()
        machine.profiler = object()
        with pytest.raises(ConfigurationError, match="profiler"):
            machine.run(_tiny())

    def test_run_bounds_refused(self):
        with pytest.raises(ConfigurationError, match="max_cycles"):
            _machine().run(_tiny(), max_cycles=1000)
        with pytest.raises(ConfigurationError, match="max_cycles"):
            _machine().run(_tiny(), max_events=1000)

    def test_wrapped_fabric_refused(self):
        machine = _machine()
        machine.fabric.send = machine.fabric.send  # tracer-style wrap
        with pytest.raises(ConfigurationError, match="wrapped fabric"):
            machine.run(_tiny())

    def test_advance_subscriber_refused(self):
        machine = _machine()
        machine.observe().subscribe("advance", lambda e: None)
        with pytest.raises(ConfigurationError, match="advance"):
            machine.run(_tiny())

    def test_scheduling_setup_refused(self):
        class EagerSetup(Workload):
            name = "eager"

            def setup(self, machine):
                machine.sim.at(5, lambda: None)

            def thread(self, machine, node_id):
                yield ("compute", 1)

        machine = _machine()
        with pytest.raises(SimulationError, match="schedule-free"):
            machine.run(EagerSetup())

    def test_check_invariants_refused(self):
        job = make_job(WorkerBenchmark, dict(worker_set_size=2,
                                             iterations=1),
                       protocol="DirnH5SNB", n_nodes=4)
        with pytest.raises(ConfigurationError, match="check-invariants"):
            execute_job(job, check_invariants=True, shards=2)


# ----------------------------------------------------------------------
# Shard-count resolution (mirrors resolve_jobs)
# ----------------------------------------------------------------------

class TestResolveShards:
    @pytest.fixture(autouse=True)
    def eight_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.setattr(params_mod.os, "cpu_count", lambda: 8)

    def test_default_is_serial(self):
        assert resolve_shards() == 1
        assert resolve_shards(None) == 1

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards(None) == 3
        # An explicit value still wins.
        assert resolve_shards(2) == 2

    def test_env_var_junk_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ConfigurationError):
            resolve_shards(None)

    def test_auto_divides_cpus_by_jobs(self):
        assert resolve_shards("auto") == 8
        assert resolve_shards("auto", jobs=4) == 2
        assert resolve_shards("auto", jobs=16) == 1  # floor of one

    def test_explicit_honoured_verbatim_when_alone(self):
        # More shards than cores is legal at jobs == 1: the CI
        # equivalence gate runs --shards 3 on small runners.
        assert resolve_shards(32) == 32
        assert resolve_shards("5") == 5

    def test_explicit_clamped_to_fair_share_in_a_pool(self):
        assert resolve_shards(32, jobs=2) == 4
        assert resolve_shards(2, jobs=2) == 2  # under the share: kept

    def test_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            resolve_shards("lots")
        with pytest.raises(ConfigurationError):
            resolve_shards(0)
        with pytest.raises(ConfigurationError):
            resolve_shards(-1)
        with pytest.raises(ConfigurationError):
            resolve_shards(2, jobs=0)

    def test_machine_caps_shards_at_node_count(self):
        machine = Machine(MachineParams(n_nodes=4), shards=64)
        assert machine.shards == 4

    def test_runner_resolves_against_worker_count(self):
        assert JobRunner(jobs=1, shards=3).shards == 3
        assert JobRunner(jobs=4, shards=32).shards == 2


# ----------------------------------------------------------------------
# Fleet telemetry: per-shard heartbeats
# ----------------------------------------------------------------------

class TestFleetSharded:
    def test_heartbeats_carry_shard_ids(self):
        events = []
        telemetry = FleetTelemetry(events.append, heartbeat_every=1)
        job = make_job(WorkerBenchmark, dict(worker_set_size=2,
                                             iterations=1),
                       protocol="DirnH5SNB", n_nodes=4)
        execute_job(job, telemetry=telemetry, shards=2)
        beats = [e for e in events if e["event"] == "job_progress"]
        assert beats, "sharded run emitted no heartbeats"
        assert {e["shard"] for e in beats} == {0, 1}
        assert all(e["cycles"] >= 0 for e in beats)
        assert [e["event"] for e in events][0] == "job_started"
        assert events[-1]["event"] == "job_finished"

    def test_monitor_tracks_and_renders_shards(self):
        monitor = FleetMonitor()
        monitor.handle(event("job_started", key="k", pid=1))
        monitor.handle(event("job_progress", key="k", pid=1,
                             cycles=100, shard=0))
        monitor.handle(event("job_progress", key="k", pid=1,
                             cycles=90, shard=1))
        assert monitor.summary()["shards"]["k"] == [100, 90]
        assert "shards" in monitor.render_progress()
        monitor.handle(event("job_finished", key="k", pid=1, wall_s=0.1,
                             run_cycles=100,
                             sim_cycles_per_sec=1000.0))
        assert monitor.summary()["shards"] == {}

    def test_plain_heartbeats_unaffected(self):
        monitor = FleetMonitor()
        monitor.handle(event("job_started", key="k", pid=1))
        monitor.handle(event("job_progress", key="k", pid=1, cycles=50))
        assert monitor.summary()["shards"] == {}
