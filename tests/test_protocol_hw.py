"""Scripted protocol scenarios: the hardware directory fast paths,
overflow traps, fetches, evictions and retries."""

from repro.common.types import CacheState, DirState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams

from tests.helpers import ScriptWorkload, check_coherence

RO = CacheState.READ_ONLY
RW = CacheState.READ_WRITE
INV = CacheState.INVALID


def machine(n=16, protocol="DirnH5SNB", **overrides):
    return Machine(MachineParams(n_nodes=n, **overrides), protocol=protocol)


def block_of(m, addr):
    return addr >> m.params.block_shift


class TestBasicSharing:
    def test_remote_read_fills_read_only(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({3: [("read", addr)]}))
        assert m.nodes[3].cache_ctrl.state_of(block_of(m, addr)) is RO
        entry = m.nodes[0].home.entries[block_of(m, addr)]
        assert entry.state is DirState.READ_ONLY
        assert 3 in entry.sharer_set()

    def test_local_read_uses_local_bit(self):
        m = machine()
        addr = m.heap.alloc_block(2)
        m.run(ScriptWorkload({2: [("read", addr)]}))
        entry = m.nodes[2].home.entries[block_of(m, addr)]
        assert entry.local_bit
        assert entry.pointers == []

    def test_write_fills_read_write(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({5: [("write", addr)]}))
        assert m.nodes[5].cache_ctrl.state_of(block_of(m, addr)) is RW
        entry = m.nodes[0].home.entries[block_of(m, addr)]
        assert entry.state is DirState.READ_WRITE
        assert entry.owner == 5

    def test_write_invalidates_readers(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("read", addr), ("barrier",)],
             2: [("read", addr), ("barrier",)],
             3: [("barrier",), ("write", addr)]},
        ))
        blk = block_of(m, addr)
        assert m.nodes[1].cache_ctrl.state_of(blk) is INV
        assert m.nodes[2].cache_ctrl.state_of(blk) is INV
        assert m.nodes[3].cache_ctrl.state_of(blk) is RW
        assert m.nodes[0].stats.invalidations_hw == 2

    def test_upgrade_keeps_copy_until_grant(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({4: [("read", addr), ("write", addr)]}))
        assert m.nodes[4].cache_ctrl.state_of(block_of(m, addr)) is RW

    def test_read_after_remote_write_downgrades_owner(self):
        m = machine(protocol="DirnH2SNB")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("write", addr), ("barrier",)],
             2: [("barrier",), ("read", addr)]},
        ))
        blk = block_of(m, addr)
        assert m.nodes[1].cache_ctrl.state_of(blk) is RO  # FETCH_RD
        assert m.nodes[2].cache_ctrl.state_of(blk) is RO
        entry = m.nodes[0].home.entries[blk]
        assert entry.state is DirState.READ_ONLY
        assert entry.sharer_set() == {1, 2}

    def test_one_pointer_read_of_dirty_invalidates_owner(self):
        m = machine(protocol="DirnH1SNB,LACK")
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("write", addr), ("barrier",)],
             2: [("barrier",), ("read", addr)]},
        ))
        blk = block_of(m, addr)
        # Capacity 1 cannot track both; the owner is invalidated.
        assert m.nodes[1].cache_ctrl.state_of(blk) is INV
        assert m.nodes[2].cache_ctrl.state_of(blk) is RO

    def test_write_after_remote_write_moves_ownership(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("write", addr), ("barrier",)],
             2: [("barrier",), ("write", addr)]},
        ))
        blk = block_of(m, addr)
        assert m.nodes[1].cache_ctrl.state_of(blk) is INV
        assert m.nodes[2].cache_ctrl.state_of(blk) is RW
        assert m.nodes[0].home.entries[blk].owner == 2


class TestOverflow:
    def readers(self, count):
        scripts = {node: [("read", None)] for node in range(1, count + 1)}
        return scripts

    def run_readers(self, m, addr, count, stagger=True):
        scripts = {}
        for i, node in enumerate(range(1, count + 1)):
            ops = [("compute", 40 * i)] if stagger else []
            ops.append(("read", addr))
            scripts[node] = ops
        m.run(ScriptWorkload(scripts))

    def test_full_map_never_traps(self):
        m = machine(protocol="DirnHNBS-")
        addr = m.heap.alloc_block(0)
        self.run_readers(m, addr, 15)
        stats = [ns for ns in (n.stats for n in m.nodes)]
        assert sum(sum(ns.traps.values()) for ns in stats) == 0
        entry = m.nodes[0].home.entries[block_of(m, addr)]
        assert len(entry.sharer_set()) == 15

    def test_h5_traps_on_sixth_reader(self):
        m = machine(protocol="DirnH5SNB")
        addr = m.heap.alloc_block(0)
        self.run_readers(m, addr, 6)
        assert m.nodes[0].stats.traps["read_overflow"] == 1
        entry = m.nodes[0].home.entries[block_of(m, addr)]
        assert entry.extended
        ext = m.nodes[0].interface.extdir.lookup(block_of(m, addr))
        assert ext is not None and len(ext.sharers) == 5

    def test_h5_five_readers_stay_in_hardware(self):
        m = machine(protocol="DirnH5SNB")
        addr = m.heap.alloc_block(0)
        self.run_readers(m, addr, 5)
        assert m.nodes[0].stats.traps == {}

    def test_trap_count_follows_pointer_refills(self):
        # After the first overflow empties the pointers, the hardware
        # absorbs four more readers before trapping again.
        m = machine(protocol="DirnH5SNB")
        addr = m.heap.alloc_block(0)
        self.run_readers(m, addr, 11)
        assert m.nodes[0].stats.traps["read_overflow"] == 2

    def test_all_readers_get_copies_despite_overflow(self):
        m = machine(protocol="DirnH2SNB")
        addr = m.heap.alloc_block(0)
        self.run_readers(m, addr, 12)
        blk = block_of(m, addr)
        for node in range(1, 13):
            assert m.nodes[node].cache_ctrl.state_of(blk) is RO

    def test_write_to_extended_block_invalidates_everyone(self):
        m = machine(protocol="DirnH2SNB")
        addr = m.heap.alloc_block(0)
        scripts = {}
        for i, node in enumerate(range(1, 9)):
            scripts[node] = [("compute", 40 * i), ("read", addr),
                             ("barrier",)]
        scripts[9] = [("barrier",), ("write", addr)]
        for node in list(scripts):
            if node != 9:
                pass
        m.run(ScriptWorkload(scripts, barriers=0))
        blk = block_of(m, addr)
        for node in range(1, 9):
            assert m.nodes[node].cache_ctrl.state_of(blk) is INV
        assert m.nodes[9].cache_ctrl.state_of(blk) is RW
        assert m.nodes[0].stats.traps["write_extended"] == 1
        assert m.nodes[0].stats.invalidations_sw == 8
        # The extension record is freed by the write handler.
        assert m.nodes[0].interface.extdir.lookup(blk) is None

    def test_no_local_bit_ablation_consumes_pointer(self):
        from repro.core.spec import ProtocolSpec
        spec = ProtocolSpec.parse("DirnH2SNB").with_updates(local_bit=False)
        m = Machine(MachineParams(n_nodes=4), protocol=spec)
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {0: [("read", addr)],
             1: [("compute", 50), ("read", addr)],
             2: [("compute", 100), ("read", addr)]},
        ))
        # home + 2 remote readers > 2 pointers -> one overflow trap
        assert m.nodes[0].stats.traps["read_overflow"] == 1


class TestEvictionsAndRaces:
    def test_dirty_eviction_writes_back(self):
        m = machine(n=4, protocol="DirnH2SNB")
        addr_a = m.heap.alloc_block(0)
        # A second block that maps to the same cache set as addr_a:
        color = m.params.cache_set_of_block(block_of(m, addr_a))
        addr_b = m.heap.alloc_block(1, color=color)
        m.run(ScriptWorkload({2: [("write", addr_a), ("read", addr_b)]}))
        blk_a = block_of(m, addr_a)
        assert m.nodes[2].cache_ctrl.state_of(blk_a) is INV
        assert m.nodes[2].stats.dirty_evictions == 1
        assert m.nodes[0].home.entries[blk_a].state is DirState.ABSENT

    def test_reread_after_eviction(self):
        m = machine(n=4, protocol="DirnH2SNB")
        addr_a = m.heap.alloc_block(0)
        color = m.params.cache_set_of_block(block_of(m, addr_a))
        addr_b = m.heap.alloc_block(1, color=color)
        m.run(ScriptWorkload(
            {2: [("write", addr_a), ("read", addr_b), ("write", addr_a)]},
        ))
        assert m.nodes[2].cache_ctrl.state_of(block_of(m, addr_a)) is RW

    def test_concurrent_writers_serialise(self):
        m = machine(n=16)
        addr = m.heap.alloc_block(0)
        scripts = {node: [("write", addr)] for node in range(1, 9)}
        stats = m.run(ScriptWorkload(scripts))
        blk = block_of(m, addr)
        owners = [node for node in range(1, 9)
                  if m.nodes[node].cache_ctrl.state_of(blk) is RW]
        assert len(owners) == 1
        assert m.nodes[0].home.entries[blk].owner == owners[0]
        assert stats.total("retries") > 0
        assert check_coherence(m) == []

    def test_victim_cache_avoids_conflict_misses(self):
        results = {}
        for victim in (False, True):
            m = machine(n=4, protocol="DirnH2SNB",
                        victim_cache_enabled=victim)
            addr_a = m.heap.alloc_block(0)
            color = m.params.cache_set_of_block(block_of(m, addr_a))
            addr_b = m.heap.alloc_block(1, color=color)
            ops = []
            for _ in range(20):
                ops.append(("read", addr_a))
                ops.append(("read", addr_b))
            stats = m.run(ScriptWorkload({2: ops}))
            results[victim] = stats.total("cache_misses")
        assert results[True] < results[False]
        assert results[True] == 2  # only the two cold misses


class TestWorkerSetTracking:
    def test_grants_recorded(self):
        m = Machine(MachineParams(n_nodes=4), protocol="DirnH2SNB",
                    track_worker_sets=True)
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload(
            {1: [("read", addr)], 2: [("compute", 60), ("read", addr)]},
        ))
        hist = m.worker_set_histogram()
        assert hist[2] == 1
