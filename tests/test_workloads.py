"""Workload correctness: the applications compute real, verifiable
results, and their sharing patterns match the paper's descriptions."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.aq import ANALYTIC_RESULT, AdaptiveQuadrature
from repro.workloads.base import det_rand, det_uniform
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.smgrid import StaticMultigrid
from repro.workloads.tsp import TSP, held_karp, tour_distances
from repro.workloads.water import Water
from repro.workloads.worker import WorkerBenchmark


def run(workload, n_nodes=16, protocol="DirnH5SNB", track=False, **overrides):
    params = MachineParams(n_nodes=n_nodes, victim_cache_enabled=True,
                           **overrides)
    machine = Machine(params, protocol=protocol, track_worker_sets=track)
    stats = machine.run(workload)
    return machine, stats


class TestDeterministicRandom:
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 62),
                    min_size=1, max_size=5))
    def test_det_rand_reproducible(self, keys):
        assert det_rand(*keys) == det_rand(*keys)

    @given(st.integers(min_value=0, max_value=2 ** 62))
    def test_det_uniform_in_range(self, key):
        value = det_uniform(2.0, 5.0, key)
        assert 2.0 <= value < 5.0

    def test_det_rand_spreads(self):
        values = {det_rand(1, i) % 64 for i in range(256)}
        assert len(values) == 64


class TestWorker:
    def test_exact_worker_set_sizes(self):
        w = WorkerBenchmark(worker_set_size=4, blocks_per_writer=2,
                            iterations=2)
        machine, stats = run(w, track=True)
        hist = stats.worker_set_histogram
        # Every WORKER block is accessed by its writer plus exactly 4
        # readers.
        assert set(hist) == {5}
        assert hist[5] == 16 * 2

    def test_every_read_misses(self):
        w = WorkerBenchmark(worker_set_size=4, blocks_per_writer=2,
                            iterations=3)
        machine, stats = run(w, protocol="DirnHNBS-")
        # reads per iteration per node = 4 (memberships) * 2 (blocks)
        expected_reads = 16 * 4 * 2 * 3
        assert stats.total("loads") == expected_reads

    def test_writes_send_one_invalidation_per_reader(self):
        w = WorkerBenchmark(worker_set_size=3, blocks_per_writer=1,
                            iterations=1)
        machine, stats = run(w, protocol="DirnHNBS-")
        # init writes send none (no sharers yet); the iteration writes
        # send exactly 3 invalidations each.
        assert stats.total("invalidations_hw") == 16 * 3

    def test_worker_set_capped_at_n_minus_1(self):
        w = WorkerBenchmark(worker_set_size=99)
        machine, _stats = run(w, n_nodes=4)
        assert w.worker_set_size == 3


class TestTSP:
    def test_held_karp_matches_brute_force(self):
        dist = tour_distances(7, seed=3)
        brute = min(
            sum(dist[a][b] for a, b in zip((0,) + p, p + (0,)))
            for p in itertools.permutations(range(1, 7))
        )
        assert held_karp(dist) == brute

    def test_finds_optimal_tour(self):
        w = TSP(n_cities=8, prefix_depth=2)
        run(w, n_nodes=16)
        assert w.best_found == w.optimal

    def test_work_is_protocol_independent(self):
        counts = set()
        for protocol in ("DirnHNBS-", "DirnH1SNB,ACK"):
            w = TSP(n_cities=8, prefix_depth=2)
            run(w, protocol=protocol)
            counts.add(w.expansions)
        assert len(counts) == 1

    def test_thrash_layout_colours_hot_blocks(self):
        w = TSP(n_cities=8, prefix_depth=2, thrash_layout=True)
        machine, _ = run(w, n_nodes=16)
        hot = w.best_addr >> machine.params.block_shift
        assert (machine.params.cache_set_of_block(hot)
                == w._runtime_code.cache_colors[0])

    def test_no_thrash_layout_avoids_conflict(self):
        w = TSP(n_cities=8, prefix_depth=2, thrash_layout=False)
        machine, _ = run(w, n_nodes=16)
        hot = w.best_addr >> machine.params.block_shift
        assert (machine.params.cache_set_of_block(hot)
                not in w._runtime_code.cache_colors)

    def test_distance_matrix_symmetric(self):
        dist = tour_distances(9)
        for i in range(9):
            assert dist[i][i] == 0
            for j in range(9):
                assert dist[i][j] == dist[j][i]

    def test_invalid_configs_rejected(self):
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            TSP(n_cities=3)
        with pytest.raises(ConfigurationError):
            TSP(n_cities=8, prefix_depth=7)


class TestAQ:
    def test_integral_matches_analytic_value(self):
        w = AdaptiveQuadrature(tolerance=0.05)
        run(w, n_nodes=16)
        assert w.result == pytest.approx(ANALYTIC_RESULT, abs=0.2)

    def test_tighter_tolerance_is_more_accurate_and_more_work(self):
        loose = AdaptiveQuadrature(tolerance=0.5)
        run(loose, n_nodes=16)
        tight = AdaptiveQuadrature(tolerance=0.02)
        run(tight, n_nodes=16)
        assert (abs(tight.result - ANALYTIC_RESULT)
                <= abs(loose.result - ANALYTIC_RESULT))
        assert tight.evaluations > loose.evaluations

    def test_work_is_protocol_independent(self):
        evals = set()
        for protocol in ("DirnHNBS-", "DirnH0SNB,ACK"):
            w = AdaptiveQuadrature(tolerance=0.2)
            run(w, n_nodes=4, protocol=protocol)
            evals.add(w.evaluations)
        assert len(evals) == 1

    def test_producer_consumer_worker_sets(self):
        w = AdaptiveQuadrature(tolerance=0.2)
        machine, stats = run(w, n_nodes=16, track=True)
        hist = stats.worker_set_histogram
        # Dominated by pairs {producer, consumer}; never wider than 2.
        assert max(hist) <= 2


class TestSMGRID:
    def test_vcycles_reduce_residual(self):
        w = StaticMultigrid(n=32, levels=3, v_cycles=2)
        run(w, n_nodes=16)
        assert w.final_residual < 0.7 * w.initial_residual

    def test_more_cycles_reduce_further(self):
        one = StaticMultigrid(n=32, levels=3, v_cycles=1)
        run(one, n_nodes=16)
        two = StaticMultigrid(n=32, levels=3, v_cycles=3)
        run(two, n_nodes=16)
        assert two.final_residual < one.final_residual

    def test_numerics_protocol_independent(self):
        residuals = set()
        for protocol in ("DirnHNBS-", "DirnH1SNB,LACK"):
            w = StaticMultigrid(n=16, levels=2, v_cycles=1)
            run(w, n_nodes=16, protocol=protocol)
            residuals.add(round(w.final_residual, 12))
        assert len(residuals) == 1

    def test_coarse_levels_use_fewer_nodes(self):
        w = StaticMultigrid(n=32, levels=4)
        machine, _ = run(w, n_nodes=16)
        finest, coarsest = w.levels[0], w.levels[-1]
        assert finest.active_nodes() == 16
        assert coarsest.active_nodes() < 16

    def test_invalid_configs_rejected(self):
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            StaticMultigrid(n=33)
        with pytest.raises(ConfigurationError):
            StaticMultigrid(n=16, levels=6)


class TestEvolve:
    def test_walks_reach_local_maxima(self):
        w = Evolve(dimensions=8, walks_per_node=2)
        run(w, n_nodes=16)
        for vertex in w.local_maxima:
            fit = w.fitness(vertex)
            assert all(w.fitness(nb) <= fit for nb in w.neighbours(vertex))

    def test_global_best_is_a_strong_vertex(self):
        w = Evolve(dimensions=8, walks_per_node=3)
        run(w, n_nodes=16)
        best_fit, best_vertex = w.global_best
        assert best_fit == w.fitness(best_vertex)
        # The landscape pulls toward the target: the best vertex found
        # must be close to it.
        distance = bin(best_vertex ^ w.target).count("1")
        assert distance <= 2

    def test_histogram_has_many_small_and_some_large_sets(self):
        w = Evolve(dimensions=10, walks_per_node=2)
        machine, stats = run(w, n_nodes=16, track=True)
        hist = stats.worker_set_histogram
        assert hist[1] > 20
        assert max(hist) >= 8

    def test_steps_protocol_independent(self):
        steps = set()
        for protocol in ("DirnHNBS-", "DirnH2SNB"):
            w = Evolve(dimensions=8, walks_per_node=2)
            run(w, n_nodes=16, protocol=protocol)
            steps.add(w.steps)
        assert len(steps) == 1


class TestMP3D:
    def test_particles_stay_in_box(self):
        w = MP3D(n_particles=128, steps=4)
        run(w, n_nodes=16)
        for particle in w.particles:
            assert 0.0 <= particle.x <= 1.0
            assert 0.0 <= particle.y <= 1.0
            assert 0.0 <= particle.z <= 1.0

    def test_checksum_protocol_independent(self):
        sums = set()
        for protocol in ("DirnHNBS-", "DirnH0SNB,ACK"):
            w = MP3D(n_particles=96, steps=2)
            run(w, n_nodes=16, protocol=protocol)
            sums.add(round(w.final_checksum, 9))
        assert len(sums) == 1

    def test_collisions_happen(self):
        w = MP3D(n_particles=256, steps=3, cells_per_side=4)
        run(w, n_nodes=16)
        assert w.collisions > 0

    def test_speed_is_preserved_by_bounces(self):
        w = MP3D(n_particles=64, steps=5)
        machine, _ = run(w, n_nodes=16)
        for p in range(w.n_particles):
            particle = w.particles[p]
            vx0 = det_uniform(-0.04, 0.04, w.seed, p, 4)
            assert abs(particle.vx) == pytest.approx(abs(vx0))


class TestWater:
    def test_momentum_conserved(self):
        w = Water(n_molecules=24, steps=3)
        run(w, n_nodes=16)
        # Pairwise forces are equal and opposite; net momentum stays 0.
        assert abs(w.final_momentum[0]) < 1e-10
        assert abs(w.final_momentum[1]) < 1e-10

    def test_positions_stay_in_box(self):
        w = Water(n_molecules=24, steps=3)
        run(w, n_nodes=16)
        for mol in w.molecules:
            assert 0.0 <= mol.x < 1.0
            assert 0.0 <= mol.y < 1.0

    def test_state_protocol_independent(self):
        states = set()
        for protocol in ("DirnHNBS-", "DirnH1SNB"):
            w = Water(n_molecules=16, steps=2)
            run(w, n_nodes=16, protocol=protocol)
            states.add(tuple(round(m.x, 12) for m in w.molecules))
        assert len(states) == 1

    def test_molecules_widely_read_shared(self):
        w = Water(n_molecules=16, steps=2)
        machine, stats = run(w, n_nodes=16, track=True)
        hist = stats.worker_set_histogram
        # Every molecule block is read by every node.
        assert max(hist) == 16
