"""Property-based coherence and determinism tests.

Adversarial random read/write traffic is thrown at every protocol in the
spectrum; afterwards the machine must satisfy the single-writer /
multiple-reader invariant, the directories must agree with the caches,
and a repeated run must be cycle-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import PAPER_SPECTRUM
from repro.machine.machine import Machine
from repro.machine.params import MachineParams

from tests.helpers import VersionedWorkload, check_coherence

ALL_PROTOCOLS = list(PAPER_SPECTRUM) + ["Dir1H1SB,LACK"]


def run_random(protocol: str, seed: int, n_nodes: int = 4,
               ops: int = 40, blocks: int = 6,
               write_ratio: float = 0.4, **overrides):
    params = MachineParams(n_nodes=n_nodes, **overrides)
    machine = Machine(params, protocol=protocol)
    stats = machine.run(
        VersionedWorkload(ops_per_node=ops, blocks=blocks, seed=seed,
                          write_ratio=write_ratio),
        max_events=5_000_000,
    )
    return machine, stats


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestCoherencePerProtocol:
    def test_random_traffic_is_coherent(self, protocol):
        machine, _stats = run_random(protocol, seed=1234)
        assert check_coherence(machine) == []

    def test_heavier_contention_is_coherent(self, protocol):
        machine, _stats = run_random(protocol, seed=99, n_nodes=9,
                                     ops=60, blocks=3, write_ratio=0.6)
        assert check_coherence(machine) == []

    def test_read_only_traffic_is_coherent(self, protocol):
        machine, _stats = run_random(protocol, seed=5, n_nodes=9,
                                     ops=40, blocks=4, write_ratio=0.0)
        assert check_coherence(machine) == []

    def test_runs_are_cycle_deterministic(self, protocol):
        _m1, s1 = run_random(protocol, seed=7)
        _m2, s2 = run_random(protocol, seed=7)
        assert s1.run_cycles == s2.run_cycles
        assert s1.total_traps == s2.total_traps
        assert s1.messages_by_kind() == s2.messages_by_kind()

    def test_victim_cache_preserves_coherence(self, protocol):
        machine, _stats = run_random(protocol, seed=31, n_nodes=4,
                                     ops=50, blocks=5,
                                     victim_cache_enabled=True)
        assert check_coherence(machine) == []


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31),
       write_ratio=st.floats(min_value=0.0, max_value=1.0),
       blocks=st.integers(min_value=1, max_value=8))
def test_limitless_coherent_under_random_parameters(seed, write_ratio,
                                                    blocks):
    machine, _ = run_random("DirnH2SNB", seed=seed, blocks=blocks,
                            write_ratio=write_ratio)
    assert check_coherence(machine) == []


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31))
def test_one_pointer_ack_coherent_under_random_seeds(seed):
    machine, _ = run_random("DirnH1SNB,ACK", seed=seed, write_ratio=0.5)
    assert check_coherence(machine) == []


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31))
def test_software_only_coherent_under_random_seeds(seed):
    machine, _ = run_random("DirnH0SNB,ACK", seed=seed, write_ratio=0.5)
    assert check_coherence(machine) == []


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31))
def test_protocols_agree_on_work_done(seed):
    """Different protocols change timing, never the work: user cycle
    totals and access counts must be identical across the spectrum."""
    reference = None
    for protocol in ("DirnHNBS-", "DirnH5SNB", "DirnH1SNB,LACK"):
        _machine, stats = run_random(protocol, seed=seed)
        signature = (stats.total("loads"), stats.total("stores"),
                     stats.sequential_cycles)
        if reference is None:
            reference = signature
        else:
            assert signature == reference


class TestBarrierSynchronisation:
    @pytest.mark.parametrize("protocol", ["DirnH5SNB", "DirnH0SNB,ACK"])
    def test_barriers_order_conflicting_phases(self, protocol):
        machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
        stats = machine.run(
            VersionedWorkload(ops_per_node=40, blocks=4, seed=11,
                              write_ratio=0.5, barrier_every=10))
        assert machine.barrier.barriers_completed == 4
        assert check_coherence(machine) == []
