"""Shard-safety inference (repro.verify.flow.shardsafe).

The contract under test: ``infer`` must reproduce the hand-audited
``shard_safe`` matrix for the eight stock workloads (EVOLVE unsafe,
everything else safe), flag a workload that launders shared mutable
state through a helper method, and stay quiet on node-private state.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.verify.flow.shardsafe import (DEFAULT_WORKLOADS, infer,
                                         run_shardsafe)
from repro.workloads.base import Op, Workload

WORKLOADS = DEFAULT_WORKLOADS()

#: the hand-audited ground truth the analysis must reproduce
EXPECTED_SAFE = {
    "aq": True,
    "evolve": False,
    "mp3d": True,
    "smgrid": True,
    "synthetic": True,
    "tsp": True,
    "water": True,
    "worker": True,
}


# ----------------------------------------------------------------------
# Inferred-vs-declared matrix over the stock workloads
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cls", WORKLOADS,
                         ids=[c.name for c in WORKLOADS])
def test_matrix_matches_declared_flag(cls):
    outcome = infer(cls)
    assert outcome.error is None
    assert outcome.inferred_safe == EXPECTED_SAFE[cls.name]
    assert outcome.declared_safe == cls.shard_safe
    # The matrix and the declarations agree, so no workload is
    # "declared safe but inferred unsafe".
    assert outcome.inferred_safe == outcome.declared_safe


def test_evolve_hazard_is_the_visit_counter_cadence():
    """EVOLVE is unsafe *because* op presence depends on a shared
    counter — the finding must name the counter and the condition."""
    outcome = infer(next(c for c in WORKLOADS if c.name == "evolve"))
    assert not outcome.inferred_safe
    assert any("condition" in h and "self.steps" in h
               for h in outcome.hazards)


def test_water_tuple_precision_keeps_publish_ops_clean():
    """WATER appends (index, fx, fy) tuples whose force components are
    legitimately coupled across nodes; the analysis must keep the
    *index* element clean so the publish writes stay node-local."""
    outcome = infer(next(c for c in WORKLOADS if c.name == "water"))
    assert outcome.inferred_safe, outcome.hazards


def test_aq_recursive_refinement_is_safe():
    """AQ's _refine recurses; the summary fixpoint must converge to
    'safe' rather than erroring or over-tainting."""
    outcome = infer(next(c for c in WORKLOADS if c.name == "aq"))
    assert outcome.error is None
    assert outcome.inferred_safe, outcome.hazards


# ----------------------------------------------------------------------
# Laundering through a helper method must be flagged
# ----------------------------------------------------------------------

class LaunderingWorkload(Workload):
    """Declares shard_safe but routes a shared counter through a
    helper method into a yielded address — the exact evasion the
    per-statement audit could miss."""

    name = "launder-fixture"
    shard_safe = True  # wrong on purpose; the analysis must say so

    def setup(self, machine) -> None:
        self.hot = 1
        self.addrs = [0] * 64

    def _spice(self) -> int:
        return self.hot * 3

    def thread(self, machine, node_id: int) -> Iterator[Op]:
        for i in range(8):
            self.hot += i
            yield ("read", self.addrs[self._spice() % 64])


class NodePrivateWorkload(Workload):
    """Same shape as the laundering fixture, but the helper reads
    node-private state — must stay clean (no false positive)."""

    name = "private-fixture"
    shard_safe = True

    def setup(self, machine) -> None:
        self.cursors = [0] * machine.params.n_nodes
        self.addrs = [0] * 64

    def _spice(self, node_id: int) -> int:
        return self.cursors[node_id] * 3

    def thread(self, machine, node_id: int) -> Iterator[Op]:
        for i in range(8):
            self.cursors[node_id] += i
            yield ("read", self.addrs[self._spice(node_id) % 64])


def test_laundering_through_helper_is_flagged():
    outcome = infer(LaunderingWorkload)
    assert outcome.error is None
    assert not outcome.inferred_safe
    assert any("self.hot" in h for h in outcome.hazards)


def test_laundering_fixture_produces_shd01_finding():
    report = run_shardsafe([LaunderingWorkload])
    assert not report.clean
    (finding,) = report.findings
    assert finding.analysis == "shardsafe"
    assert finding.code == "SHD01"
    assert "launder-fixture" in finding.message
    assert finding.trace  # the hazard lines ride along as the witness


def test_node_private_helper_is_not_flagged():
    outcome = infer(NodePrivateWorkload)
    assert outcome.error is None
    assert outcome.inferred_safe, outcome.hazards


# ----------------------------------------------------------------------
# run_shardsafe: report shape
# ----------------------------------------------------------------------

def test_default_run_is_clean_with_expected_stats():
    report = run_shardsafe()
    assert report.clean
    assert report.passes == ["shardsafe"]
    assert report.stats["shardsafe.workloads"] == 8
    assert report.stats["shardsafe.inferred_unsafe"] == ["evolve"]
    assert report.stats["shardsafe.conservative_declarations"] == []


def test_unanalysable_class_is_an_error_finding():
    ghost = type("GhostWorkload", (Workload,), {
        "name": "ghost",
        "setup": lambda self, machine: None,
        "thread": lambda self, machine, node_id: iter(()),
    })
    report = run_shardsafe([ghost])
    assert not report.clean
    (finding,) = report.findings
    assert finding.code == "SHD90"
