"""Taint determinism analysis (repro.verify.flow.taint).

Three claims under test: the dataflow pass catches laundering the
per-statement linter cannot see (helper returns, aliases, branch
joins), it kills the linter's false positives on provably-sorted
values, and the repository tree is clean with every existing
suppression load-bearing.
"""

from __future__ import annotations

import textwrap

from repro.verify.flow.taint import (run_taint, stale_suppressions,
                                     taint_source)


def _codes(source: str):
    ft = taint_source(textwrap.dedent(source), "fixture.py")
    return [f.code for f in ft.findings]


# ----------------------------------------------------------------------
# Laundering the linter cannot see
# ----------------------------------------------------------------------

def test_set_laundered_through_helper_return_is_caught():
    assert _codes("""
        def helper():
            return {1, 2, 3}

        def consume(out):
            for x in helper():
                out.append(x)
    """) == ["RND10"]


def test_set_laundered_through_method_return_is_caught():
    assert _codes("""
        class Box:
            def _members(self):
                return set(self.raw)

            def drain(self, out):
                for x in self._members():
                    out.append(x)
    """) == ["RND10"]


def test_summary_fixpoint_crosses_call_chains():
    """a() returns b()'s set; b is defined *after* a, so only the
    summary fixpoint (not a single in-order pass) can see it."""
    assert _codes("""
        def a():
            return b()

        def b():
            return frozenset((1, 2))

        def consume(out):
            for x in a():
                out.append(x)
    """) == ["RND10"]


def test_alias_through_local_is_caught():
    assert _codes("""
        def consume(out):
            s = {1, 2}
            t = s
            for x in t:
                out.append(x)
    """) == ["RND10"]


def test_taint_survives_a_branch_join():
    assert _codes("""
        def consume(flag, out):
            vals = [1, 2]
            if flag:
                vals = {1, 2}
            for x in vals:
                out.append(x)
    """) == ["RND10"]


def test_set_algebra_keeps_the_taint():
    assert _codes("""
        def consume(out):
            a = {1}
            b = {2}
            for x in a | b:
                out.append(x)
    """) == ["RND10"]


def test_comprehension_and_yield_from_are_sinks():
    assert _codes("""
        def helper():
            return {1, 2}

        def squares():
            return [x * x for x in helper()]

        def stream():
            yield from helper()
    """) == ["RND10", "RND10"]


# ----------------------------------------------------------------------
# Sanitizers and deliberate non-taints
# ----------------------------------------------------------------------

def test_sorted_sanitizes_a_laundered_set():
    assert _codes("""
        def helper():
            return {1, 2, 3}

        def consume(out):
            for x in sorted(helper()):
                out.append(x)
    """) == []


def test_conversion_to_tuple_drops_the_taint():
    # Matches the linter's scoping: a converted set has a fixed (if
    # arbitrary) order per build; forcing sorted() on such sites would
    # change simulated op streams and break byte-identical baselines.
    assert _codes("""
        def consume(out):
            pair = tuple({1, 2})
            for x in pair:
                out.append(x)
    """) == []


def test_unsorted_directory_listing_is_flagged_at_the_iteration():
    ft = taint_source(textwrap.dedent("""
        import os

        def scan(d, out):
            names = os.listdir(d)
            for n in names:
                out.append(n)
    """), "fixture.py")
    (finding,) = ft.findings
    assert finding.code == "RND11"
    assert finding.location.endswith(":6")  # the for, not the listdir


def test_in_place_sort_kills_the_listing_false_positive():
    """The shape the per-statement linter flags spuriously: listdir
    followed by .sort() is provably ordered by the time it's used."""
    assert _codes("""
        import os

        def scan(d, out):
            names = os.listdir(d)
            names.sort()
            for n in names:
                out.append(n)
    """) == []


def test_sorted_wrapping_kills_the_listing_taint():
    assert _codes("""
        import os

        def scan(d, out):
            for n in sorted(os.listdir(d)):
                out.append(n)
    """) == []


# ----------------------------------------------------------------------
# At-site sources and suppressions
# ----------------------------------------------------------------------

def test_wall_clock_and_rng_flag_at_the_call_site():
    assert _codes("""
        import random
        import time

        def stamp():
            return time.time() + random.random()
    """) == ["RND12", "RND12"]


def test_exec_flags_at_the_call_site():
    assert _codes("""
        def build(src):
            exec(src)
    """) == ["RND13"]


def test_suppression_silences_and_is_recorded_as_used():
    ft = taint_source(textwrap.dedent("""
        import time

        def stamp():
            return time.time()  # repro: allow-nondet(wall clock for logs only)
    """), "fixture.py")
    assert ft.findings == []
    assert ft.used_suppressions == {5}


def test_sink_line_suppression_covers_a_laundered_iteration():
    ft = taint_source(textwrap.dedent("""
        def helper():
            return {1, 2}

        def consume(out):
            for x in helper():  # repro: allow-nondet(order-insensitive fill)
                out.append(x)
    """), "fixture.py")
    assert ft.findings == []
    assert 6 in ft.used_suppressions


# ----------------------------------------------------------------------
# Stale-suppression sweep across both passes
# ----------------------------------------------------------------------

def test_stale_sweep_spares_taint_only_suppressions(tmp_path):
    """A suppression the linter calls stale but the taint pass relies
    on is load-bearing; a suppression neither pass uses is dead."""
    (tmp_path / "launder.py").write_text(textwrap.dedent("""
        def helper():
            return {1, 2}

        def consume(out):
            for x in helper():  # repro: allow-nondet(order-insensitive)
                out.append(x)
    """))
    (tmp_path / "dead.py").write_text(textwrap.dedent("""
        def add(a, b):
            return a + b  # repro: allow-nondet(nothing here is nondet)
    """))
    stale = stale_suppressions(str(tmp_path))
    assert len(stale) == 1
    assert stale[0].endswith("dead.py:3")


# ----------------------------------------------------------------------
# The repository tree itself
# ----------------------------------------------------------------------

def test_repository_tree_is_clean():
    report = run_taint()
    assert report.clean
    assert report.passes == ["taint"]
    assert report.stats["taint.findings"] == 0
    assert report.stats["taint.files"] > 50
    assert report.stats["taint.generated"] == 2


def test_repository_has_no_stale_suppressions():
    assert stale_suppressions() == []
