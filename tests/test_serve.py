"""Tests for the experiment-farm server (repro.serve).

Three layers under test:

- **specs**: strict JSON validation — unknown fields, bad values, and
  constructor-signature mismatches all fail the request before anything
  is scheduled;
- **HTTP endpoints**: submit/status/artifact/metrics/events round
  trips against a real server on a real socket (thread worker pool, so
  the suite stays cheap and monkeypatchable);
- **the two hard invariants**: concurrent submissions of one spec
  execute exactly once, and everything served over HTTP is
  byte-identical to the CLI artifact for the same spec.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.exec import FarmExecutor, ResultCache
from repro.exec.jobs import job_key, make_job
from repro.obs import FleetMonitor, dumps_json
from repro.serve import (
    SpecError,
    FarmServer,
    ServerThread,
    analyze_request,
    job_from_spec,
    workload_registry,
)
from repro.workloads.worker import WorkerBenchmark

TINY_SPEC = {
    "workload": "worker",
    "workload_kwargs": {"worker_set_size": 2, "iterations": 1},
    "nodes": 4,
}


def tiny_job(**overrides):
    return make_job(WorkerBenchmark,
                    {"worker_set_size": 2, "iterations": 1},
                    protocol="DirnH5SNB", n_nodes=4, **overrides)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

class TestJobSpecs:
    def test_minimal_spec_round_trips(self):
        job = job_from_spec(dict(TINY_SPEC))
        assert job == tiny_job()

    def test_registry_covers_paper_apps_plus_worker(self):
        names = list(workload_registry())
        assert "water" in names and "worker" in names

    def test_spec_key_matches_cli_job_key(self):
        assert job_key(job_from_spec(dict(TINY_SPEC))) \
            == job_key(tiny_job())

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            job_from_spec(dict(TINY_SPEC, node=4))

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError, match="unknown workload"):
            job_from_spec({"workload": "fft"})

    def test_bad_protocol_rejected(self):
        with pytest.raises(SpecError, match="cannot parse protocol"):
            job_from_spec(dict(TINY_SPEC, protocol="DirQQ"))

    def test_bad_kwargs_rejected_before_scheduling(self):
        with pytest.raises(SpecError, match="workload_kwargs"):
            job_from_spec(dict(TINY_SPEC,
                               workload_kwargs={"sizes": 2}))

    def test_bad_types_rejected(self):
        with pytest.raises(SpecError, match="nodes"):
            job_from_spec(dict(TINY_SPEC, nodes="four"))
        with pytest.raises(SpecError, match="victim_cache"):
            job_from_spec(dict(TINY_SPEC, victim_cache="yes"))
        with pytest.raises(SpecError, match="invalidation_mode"):
            job_from_spec(dict(TINY_SPEC, invalidation_mode="eager"))
        with pytest.raises(SpecError, match="object"):
            job_from_spec(["worker"])


class TestAnalyzeSpecs:
    def test_defaults_mirror_the_cli(self):
        from repro.analysis.reportgen import ANALYZE_DEFAULTS

        job, config = analyze_request({})
        assert job.attribution
        assert config["app"] == ANALYZE_DEFAULTS["app"]
        assert config["nodes"] == ANALYZE_DEFAULTS["nodes"]
        assert config["worker_set_size"] == ANALYZE_DEFAULTS["size"]

    def test_non_worker_app_drops_worker_fields(self):
        _job, config = analyze_request({"app": "water", "nodes": 4})
        assert "worker_set_size" not in config
        assert config["app"] == "water"

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown analyze spec"):
            analyze_request({"worker_set_size": 4})


# ----------------------------------------------------------------------
# A live server on a real socket
# ----------------------------------------------------------------------

@pytest.fixture
def farm_server(tmp_path):
    monitor = FleetMonitor()
    farm = FarmExecutor(jobs=2,
                        cache=ResultCache(str(tmp_path / "cache")),
                        telemetry=monitor, worker_pool="thread")
    monitor.start(jobs=farm.n_workers)
    thread = ServerThread(FarmServer(farm, monitor)).start()
    try:
        yield thread
    finally:
        thread.stop()
        farm.close()
        monitor.close()


def http_get(port, path, timeout=60):
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=timeout) as r:
            return r.status, r.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def http_post(port, path, doc, timeout=180):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(doc).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as r:
            return r.status, r.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestEndpoints:
    def test_index_and_healthz(self, farm_server):
        status, body = http_get(farm_server.port, "/")
        assert status == 200
        assert "/events" in json.loads(body)["endpoints"].__str__()
        status, body = http_get(farm_server.port, "/healthz")
        assert status == 200 and json.loads(body) == {"ok": True}

    def test_submit_wait_and_fetch(self, farm_server):
        port = farm_server.port
        status, body = http_post(port, "/jobs?wait=1", TINY_SPEC)
        assert status == 200
        doc = json.loads(body)
        assert doc["state"] == "done"
        assert doc["key"] == job_key(tiny_job())
        assert doc["result"]["run_cycles"] > 0
        assert doc["spec"]["protocol"] == "DirnH5SNB"
        status, body = http_get(port, f"/jobs/{doc['key']}")
        assert status == 200
        assert json.loads(body)["state"] == "done"
        status, body = http_get(port, "/jobs")
        assert [j["key"] for j in json.loads(body)["jobs"]] == [doc["key"]]

    def test_submit_without_wait_returns_202(self, farm_server):
        status, body = http_post(farm_server.port, "/jobs", TINY_SPEC)
        assert status == 202
        doc = json.loads(body)
        assert doc["state"] in ("queued", "running", "done")
        assert doc["location"] == f"/jobs/{doc['key']}"

    def test_resubmission_coalesces(self, farm_server):
        port = farm_server.port
        http_post(port, "/jobs?wait=1", TINY_SPEC)
        status, body = http_post(port, "/jobs?wait=1", TINY_SPEC)
        doc = json.loads(body)
        assert doc["submissions"] == 2
        assert doc["sources"][-1] in ("memo", "inflight")
        counters = json.loads(
            http_get(port, "/status")[1])["server"]
        assert counters["jobs_executed"] == 1

    def test_error_paths(self, farm_server):
        port = farm_server.port
        status, body = http_post(port, "/jobs", {"workload": "fft"})
        assert status == 400
        assert "unknown workload" in json.loads(body)["error"]
        status, _ = http_get(port, "/jobs/nope:DirnH5SNB:0000")
        assert status == 404
        status, _ = http_get(port, "/nope")
        assert status == 404
        status, body = http_get(port, "/jobs/x/artifact/extra")
        assert status == 404
        status, body = http_post(port, "/metrics", {})
        assert status == 405

    def test_metrics_exposition(self, farm_server):
        port = farm_server.port
        http_post(port, "/jobs?wait=1", TINY_SPEC)
        status, body = http_get(port, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "# TYPE repro_fleet_jobs_completed_total counter" in text
        assert "repro_fleet_jobs_completed_total 1" in text

    def test_status_document(self, farm_server):
        port = farm_server.port
        http_post(port, "/jobs?wait=1", TINY_SPEC)
        doc = json.loads(http_get(port, "/status")[1])
        assert doc["schema"] == "repro-serve/1"
        assert doc["summary"]["completed"] == 1
        assert doc["server"]["worker_pool"] == "thread"
        assert len(doc["jobs"]) == 1


class TestAttributionArtifacts:
    def test_completed_job_payload_carries_the_artifact(self,
                                                        farm_server):
        port = farm_server.port
        spec = dict(TINY_SPEC, attribution=True)
        status, body = http_post(port, "/jobs?wait=1", spec)
        assert status == 200
        doc = json.loads(body)
        artifact = doc["attribution"]
        assert artifact["schema"] == "repro-attribution/1"
        assert sum(artifact["buckets"].values()) \
            == artifact["stall_cycles"]
        status, raw = http_get(port, doc["artifact"])
        assert status == 200
        # the artifact endpoint serves the canonical encoding
        assert raw.decode("utf-8") == dumps_json(artifact)

    def test_plain_job_has_no_artifact(self, farm_server):
        port = farm_server.port
        status, body = http_post(port, "/jobs?wait=1", TINY_SPEC)
        key = json.loads(body)["key"]
        status, body = http_get(port, f"/jobs/{key}/artifact")
        assert status == 404
        assert "no attribution artifact" in json.loads(body)["error"]


class TestEventStream:
    def test_sse_relays_the_fleet_stream(self, farm_server):
        port = farm_server.port
        sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        sock.sendall(b"GET /events HTTP/1.1\r\nHost: t\r\n"
                     b"Accept: text/event-stream\r\n\r\n")
        sock.settimeout(60)
        http_post(port, "/jobs?wait=1", TINY_SPEC)
        buf = b""
        while b"event: job_finished" not in buf:
            chunk = sock.recv(65536)
            assert chunk, "stream closed before job_finished"
            buf += chunk
        sock.close()
        head, _, rest = buf.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"text/event-stream" in head
        assert b"Transfer-Encoding: chunked" in head
        # first data frame is the summary snapshot, then live events
        frames = [line for line in rest.split(b"\n")
                  if line.startswith(b"event: ")]
        kinds = [f.split(b": ")[1].decode() for f in frames]
        assert kinds[0] == "summary"
        assert "job_started" in kinds and "job_finished" in kinds
        # every data line is one JSON document; live ones carry seq ids
        for line in rest.split(b"\n"):
            if line.startswith(b"data: "):
                json.loads(line[len(b"data: "):])

    def test_disconnected_client_is_cleaned_up(self, farm_server):
        port = farm_server.port
        sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        sock.sendall(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
        sock.recv(4096)
        sock.close()
        # the server must keep answering after the subscriber vanishes
        http_post(port, "/jobs?wait=1", TINY_SPEC)
        status, _ = http_get(port, "/healthz")
        assert status == 200


class TestInflightDedupOverHttp:
    def test_two_concurrent_clients_one_execution(self, farm_server,
                                                  monkeypatch):
        import repro.exec.pool as pool_mod

        release = threading.Event()
        calls = []
        real_execute = pool_mod.execute_job

        def gated_execute(job, *args, **kwargs):
            calls.append(job_key(job))
            assert release.wait(120)
            return real_execute(job, *args, **kwargs)

        monkeypatch.setattr(pool_mod, "execute_job", gated_execute)
        port = farm_server.port
        results = [None, None]

        def client(slot):
            results[slot] = http_post(port, "/jobs?wait=1", TINY_SPEC)

        threads = [threading.Thread(target=client, args=(slot,))
                   for slot in range(2)]
        for t in threads:
            t.start()
        # wait until one execution started and the other coalesced
        farm = farm_server.server.farm
        for _ in range(600):
            counters = farm.counters()
            if counters["inflight_hits"] >= 1 and calls:
                break
            threading.Event().wait(0.05)
        release.set()
        for t in threads:
            t.join(timeout=180)
        assert calls == [job_key(tiny_job())]
        (s1, b1), (s2, b2) = results
        assert s1 == s2 == 200
        docs = [json.loads(b1), json.loads(b2)]
        assert docs[0]["result"] == docs[1]["result"]
        assert docs[0]["submissions"] == docs[1]["submissions"] == 2
        assert farm.counters()["jobs_executed"] == 1


class TestByteIdentityWithCli:
    ANALYZE = {"app": "worker", "nodes": 4, "size": 2, "iterations": 1,
               "protocol": "DirnH2SNB"}

    def test_analyze_bytes_match_the_cli_artifact(self, farm_server,
                                                  tmp_path, capsys):
        status, served = http_post(farm_server.port, "/analyze",
                                   self.ANALYZE)
        assert status == 200
        out = tmp_path / "cli.json"
        code = cli_main(["analyze", "--app", "worker", "--nodes", "4",
                         "--size", "2", "--iterations", "1",
                         "--protocol", "DirnH2SNB",
                         "--out", str(out)])
        capsys.readouterr()
        assert code == 0
        assert served == out.read_bytes()

    def test_analyze_bytes_identical_across_worker_counts(self,
                                                          tmp_path):
        served = []
        for jobs in (1, 2):
            monitor = FleetMonitor()
            farm = FarmExecutor(
                jobs=jobs, cache=ResultCache(str(tmp_path / f"c{jobs}")),
                telemetry=monitor, worker_pool="thread")
            thread = ServerThread(FarmServer(farm, monitor)).start()
            try:
                status, body = http_post(thread.port, "/analyze",
                                         self.ANALYZE)
                assert status == 200
                served.append(body)
            finally:
                thread.stop()
                farm.close()
        assert served[0] == served[1]


class TestExperimentsEndpoint:
    def test_report_matches_the_cli_byte_for_byte(self, farm_server,
                                                  tmp_path, capsys):
        status, served = http_post(farm_server.port, "/experiments",
                                   {"preset": "quick"}, timeout=570)
        assert status == 200
        out = tmp_path / "EXPERIMENTS.md"
        code = cli_main(["experiments", "--quick", "--no-cache",
                         "--out", str(out)])
        capsys.readouterr()
        assert code == 0
        assert served == out.read_bytes()

    def test_unknown_preset_rejected(self, farm_server):
        status, body = http_post(farm_server.port, "/experiments",
                                 {"preset": "huge"})
        assert status == 400
        assert "unknown preset" in json.loads(body)["error"]
