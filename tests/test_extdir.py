"""Tests for the software-extended directory structures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.software.extdir import (
    CHUNK_POINTERS,
    SMALL_SET_THRESHOLD,
    ExtendedDirectory,
    ExtensionRecord,
    SoftwareDirectory,
)


class TestExtensionRecord:
    def test_small_set_detection(self):
        rec = ExtensionRecord(block=1)
        rec.sharers.update(range(SMALL_SET_THRESHOLD))
        assert rec.is_small
        rec.sharers.add(99)
        assert not rec.is_small

    def test_small_records_use_no_chunks(self):
        rec = ExtensionRecord(block=1, sharers={1, 2, 3})
        assert rec.chunks == 0

    def test_chunk_count(self):
        rec = ExtensionRecord(block=1, sharers=set(range(CHUNK_POINTERS + 1)))
        assert rec.chunks == 2
        rec = ExtensionRecord(block=1, sharers=set(range(CHUNK_POINTERS)))
        assert rec.chunks == 1


class TestExtendedDirectory:
    def test_get_or_create_is_idempotent(self):
        ext = ExtendedDirectory()
        a = ext.get_or_create(5)
        b = ext.get_or_create(5)
        assert a is b
        assert ext.allocations == 1

    def test_lookup_absent(self):
        ext = ExtendedDirectory()
        assert ext.lookup(9) is None
        assert 9 not in ext

    def test_free(self):
        ext = ExtendedDirectory()
        ext.get_or_create(5)
        freed = ext.free(5)
        assert freed is not None and freed.block == 5
        assert ext.frees == 1
        assert ext.free(5) is None

    def test_peak_tracking(self):
        ext = ExtendedDirectory()
        for block in range(10):
            ext.get_or_create(block)
        for block in range(10):
            ext.free(block)
        assert ext.peak_records == 10
        assert len(ext) == 0

    def test_live_chunks(self):
        ext = ExtendedDirectory()
        rec = ext.get_or_create(1)
        rec.sharers.update(range(20))
        assert ext.live_chunks == -(-20 // CHUNK_POINTERS)

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=30)),
                    max_size=200))
    def test_alloc_free_accounting(self, ops):
        ext = ExtendedDirectory()
        live = set()
        for create, block in ops:
            if create:
                ext.get_or_create(block)
                live.add(block)
            else:
                ext.free(block)
                live.discard(block)
            assert set(ext.blocks()) == live
        assert ext.allocations - ext.frees == len(live)


class TestSoftwareDirectory:
    def test_entries_track_full_state(self):
        swdir = SoftwareDirectory()
        entry = swdir.get_or_create(3)
        entry.sharers.add(1)
        entry.remote_bit = True
        again = swdir.lookup(3)
        assert again is entry
        assert again.remote_bit

    def test_len_and_contains(self):
        swdir = SoftwareDirectory()
        swdir.get_or_create(1)
        swdir.get_or_create(2)
        assert len(swdir) == 2
        assert 1 in swdir and 3 not in swdir
