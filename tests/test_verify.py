"""Tests for the library-level coherence verifier and the barrier hook."""

import pytest

from repro.analysis.verify import (
    BarrierCoherenceChecker,
    coherence_violations,
    install_barrier_checker,
)
from repro.common.types import CacheState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload, VersionedWorkload


def machine(n=16, protocol="DirnH5SNB"):
    return Machine(MachineParams(n_nodes=n), protocol=protocol)


class TestVerifier:
    def test_clean_machine_has_no_violations(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)], 2: [("write", addr)]}))
        assert coherence_violations(m) == []

    def test_detects_planted_double_writer(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload({1: [("write", addr)]}))
        # Corrupt: plant a second dirty copy behind the protocol's back.
        m.nodes[2].cache_ctrl.cache.fill(blk, CacheState.READ_WRITE)
        problems = coherence_violations(m)
        assert any("multiple writers" in p for p in problems)

    def test_detects_planted_reader_beside_writer(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload({1: [("write", addr)]}))
        m.nodes[3].cache_ctrl.cache.fill(blk, CacheState.READ_ONLY)
        problems = coherence_violations(m)
        assert any("alongside readers" in p for p in problems)

    def test_detects_untracked_reader(self):
        m = machine(protocol="DirnH2SNB")
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload({1: [("read", addr)]}))
        m.nodes[3].cache_ctrl.cache.fill(blk, CacheState.READ_ONLY)
        problems = coherence_violations(m)
        assert any("untracked" in p for p in problems)


class TestBarrierChecker:
    @pytest.mark.parametrize("protocol",
                             ["DirnH5SNB", "DirnH1SNB,ACK",
                              "DirnH0SNB,ACK", "DirnHNBS-"])
    def test_worker_verifies_at_every_barrier(self, protocol):
        m = machine(protocol=protocol)
        checker = install_barrier_checker(m)
        m.run(WorkerBenchmark(worker_set_size=6, iterations=3))
        assert checker.barriers_checked == m.barrier.barriers_completed
        assert checker.barriers_checked >= 7

    def test_applications_verify_at_every_barrier(self):
        for factory in (lambda: Evolve(dimensions=8, walks_per_node=2),
                        lambda: MP3D(n_particles=64, steps=2)):
            m = machine()
            checker = install_barrier_checker(m)
            m.run(factory())
            assert checker.barriers_checked > 0

    def test_versioned_traffic_verifies_at_barriers(self):
        m = machine(protocol="DirnH1SNB,LACK")
        install_barrier_checker(m)
        m.run(VersionedWorkload(ops_per_node=60, blocks=6, seed=5,
                                write_ratio=0.5, barrier_every=20))

    def test_checker_reports_barrier_number(self):
        m = machine()
        checker = BarrierCoherenceChecker(m)
        m.barrier.on_complete = checker
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift

        class Corruptor(ScriptWorkload):
            """Plants an illegal copy right before the second barrier."""

            def thread(self, mach, node_id):
                yield ("compute", 5)
                yield ("barrier",)
                if node_id == 1:
                    mach.nodes[2].cache_ctrl.cache.fill(
                        blk, CacheState.READ_WRITE)
                    mach.nodes[3].cache_ctrl.cache.fill(
                        blk, CacheState.READ_WRITE)
                yield ("barrier",)

        with pytest.raises(AssertionError, match="coherence violated"):
            m.run(Corruptor({}, barriers=2))
