"""Tests for hardware directory entries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ProtocolStateError
from repro.common.types import DirState
from repro.core.directory import DirectoryEntry


def entry(capacity=5, home=0, local_bit=True, full_map=False):
    return DirectoryEntry(capacity=capacity, block=42, home=home,
                          use_local_bit=local_bit, full_map=full_map)


class TestPointers:
    def test_record_until_capacity(self):
        e = entry(capacity=2)
        e.record(1)
        e.record(2)
        assert e.sharer_set() == {1, 2}
        with pytest.raises(ProtocolStateError):
            e.record(3)

    def test_record_idempotent(self):
        e = entry(capacity=1)
        e.record(3)
        e.record(3)
        assert e.pointers == [3]

    def test_local_bit_does_not_consume_a_pointer(self):
        e = entry(capacity=1, home=7)
        e.record(7)
        assert e.local_bit
        assert e.pointers == []
        e.record(3)  # the real pointer is still free
        assert e.sharer_set() == {3, 7}

    def test_local_bit_disabled_consumes_pointer(self):
        e = entry(capacity=1, home=7, local_bit=False)
        e.record(7)
        assert e.pointers == [7]
        with pytest.raises(ProtocolStateError):
            e.record(3)

    def test_full_map_never_overflows(self):
        e = entry(capacity=0, full_map=True, local_bit=False)
        for node in range(100):
            assert e.can_record(node)
            e.record(node)
        assert len(e.sharer_set()) == 100

    def test_can_record(self):
        e = entry(capacity=1)
        assert e.can_record(3)
        e.record(3)
        assert e.can_record(3)  # already present
        assert e.can_record(0)  # the home's local bit
        assert not e.can_record(4)

    def test_take_all_pointers_leaves_local_bit(self):
        e = entry(capacity=3)
        e.record(0)  # local bit
        e.record(1)
        e.record(2)
        taken = e.take_all_pointers()
        assert sorted(taken) == [1, 2]
        assert e.local_bit
        assert e.pointers == []

    def test_drop(self):
        e = entry(capacity=2)
        e.record(0)
        e.record(1)
        e.drop(1)
        e.drop(0)
        assert e.sharer_set() == set()


class TestTransitions:
    def test_owner_requires_read_write(self):
        e = entry()
        with pytest.raises(ProtocolStateError):
            _ = e.owner

    def test_reset_to_exclusive_remote(self):
        e = entry()
        e.record(1)
        e.record(2)
        e.state = DirState.READ_ONLY
        e.extended = True
        e.reset_to_exclusive(3)
        assert e.state is DirState.READ_WRITE
        assert e.owner == 3
        assert not e.extended
        assert not e.local_bit

    def test_reset_to_exclusive_home_uses_local_bit(self):
        e = entry(home=0)
        e.reset_to_exclusive(0)
        assert e.local_bit
        assert e.pointers == []
        assert e.owner == 0

    def test_reset_to_absent(self):
        e = entry()
        e.record(1)
        e.state = DirState.READ_WRITE
        e.sw_write = True
        e.reset_to_absent()
        assert e.state is DirState.ABSENT
        assert e.sharer_set() == set()
        assert not e.sw_write

    def test_idle(self):
        e = entry()
        assert e.idle
        e.state = DirState.WRITE_TRANSACTION
        assert not e.idle
        e.state = DirState.READ_ONLY
        e.sw_pending = True
        assert not e.idle

    def test_owner_multiple_pointers_is_an_error(self):
        e = entry(local_bit=False)
        e.record(1)
        e.record(2)
        e.state = DirState.READ_WRITE
        with pytest.raises(ProtocolStateError):
            _ = e.owner


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=30),
           st.integers(min_value=1, max_value=5))
    def test_sharers_bounded_by_capacity(self, nodes, capacity):
        e = entry(capacity=capacity, home=0)
        for node in nodes:
            if e.can_record(node):
                e.record(node)
        # capacity pointers plus at most the local bit
        assert len(e.sharer_set()) <= capacity + 1
        assert len(e.pointers) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=30))
    def test_record_can_record_consistent(self, nodes):
        e = entry(capacity=3, home=0)
        for node in nodes:
            if e.can_record(node):
                e.record(node)  # must never raise
                assert e.has_pointer(node)
