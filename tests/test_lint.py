"""Determinism linter: one test per hazard class, plus suppression
semantics and a clean pass over the real source tree."""

import textwrap

from repro.verify.lint import lint_source, run_lint


def codes(source):
    return sorted({f.code for f in lint_source(textwrap.dedent(source))})


# ----------------------------------------------------------------------
# RND01 — set iteration
# ----------------------------------------------------------------------


def test_set_literal_iteration_flagged():
    assert codes("""
        for x in {1, 2, 3}:
            print(x)
    """) == ["RND01"]


def test_set_constructor_iteration_flagged():
    assert codes("""
        for x in set(items):
            print(x)
    """) == ["RND01"]


def test_set_variable_iteration_flagged():
    assert codes("""
        def f(items):
            pending = set(items)
            return [x for x in pending]
    """) == ["RND01"]


def test_set_union_iteration_flagged():
    assert codes("""
        def f(a):
            readers = {1} | set(a)
            for node in readers - {0}:
                print(node)
    """) == ["RND01"]


def test_sorted_set_iteration_clean():
    assert codes("""
        def f(items):
            pending = set(items)
            for x in sorted(pending):
                print(x)
            return [y for y in sorted({1, 2})]
    """) == []


def test_rebound_variable_not_flagged():
    assert codes("""
        def f(items):
            pending = set(items)
            pending = sorted(pending)
            for x in pending:
                print(x)
    """) == []


# ----------------------------------------------------------------------
# RND02 — wall clock / RNG
# ----------------------------------------------------------------------


def test_time_time_flagged():
    assert codes("""
        import time
        stamp = time.time()
    """) == ["RND02"]


def test_datetime_now_flagged():
    assert codes("""
        import datetime
        when = datetime.datetime.now()
    """) == ["RND02"]


def test_random_module_flagged():
    assert codes("""
        import random
        pick = random.choice(options)
    """) == ["RND02"]


def test_perf_counter_flagged():
    assert codes("""
        import time
        t0 = time.perf_counter()
    """) == ["RND02"]


def test_monotonic_flagged():
    assert codes("""
        import time
        now = time.monotonic()
        later = time.monotonic_ns()
    """) == ["RND02"]


# ----------------------------------------------------------------------
# RND03 — filesystem ordering
# ----------------------------------------------------------------------


def test_listdir_unsorted_flagged():
    assert codes("""
        import os
        names = os.listdir(path)
    """) == ["RND03"]


def test_listdir_sorted_clean():
    assert codes("""
        import os
        names = sorted(os.listdir(path))
    """) == []


def test_os_walk_unsorted_flagged():
    assert codes("""
        import os
        for root, dirs, files in os.walk(top):
            for name in files:
                print(root, name)
    """) == ["RND03"]


def test_os_walk_sorted_clean():
    assert codes("""
        import os
        for root, dirs, files in os.walk(top):
            dirs.sort()
            for name in sorted(files):
                print(root, name)
    """) == []


# ----------------------------------------------------------------------
# RND04 — popitem
# ----------------------------------------------------------------------


def test_bare_popitem_flagged():
    assert codes("""
        key, value = mapping.popitem()
    """) == ["RND04"]


def test_ordereddict_fifo_popitem_clean():
    assert codes("""
        key, value = mapping.popitem(last=False)
    """) == []


# ----------------------------------------------------------------------
# RND05 — id()
# ----------------------------------------------------------------------


def test_id_keyed_ordering_flagged():
    assert codes("""
        order = sorted(objs, key=lambda o: id(o))
    """) == ["RND05"]


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------


def test_suppression_with_reason_silences_finding():
    assert codes("""
        import time
        stamp = time.time()  # repro: allow-nondet(cache aging is wall-clock)
    """) == []


def test_suppression_without_reason_is_a_finding():
    assert codes("""
        import time
        stamp = time.time()  # repro: allow-nondet()
    """) == ["RND00"]


def test_stale_suppression_is_a_finding():
    assert codes("""
        total = 1 + 1  # repro: allow-nondet(nothing nondeterministic here)
    """) == ["RND00"]


def test_suppression_only_covers_its_own_line():
    findings = lint_source(textwrap.dedent("""
        import time
        a = time.time()  # repro: allow-nondet(legit)
        b = time.time()
    """))
    assert [f.code for f in findings] == ["RND02"]
    assert findings[0].location.endswith(":4")


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------


def test_installed_package_is_lint_clean():
    report = run_lint()
    assert report.clean, report.render_text()
    assert report.stats["lint.files"] > 50


def test_fleet_suppressions_are_load_bearing():
    """Mutation check against the shipped fleet-telemetry module.

    Every ``allow-nondet`` in ``repro.obs.fleet`` must sit on a line
    the linter would otherwise flag.  Replace one real wall-clock call
    with a constant — leaving its suppression comment in place — and
    the linter must surface the now-stale suppression as RND00 rather
    than let it silently mask a future regression.
    """
    import repro.obs.fleet as fleet

    path = fleet.__file__
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()

    # the module as shipped: suppressed wall clocks, zero findings
    assert [f.code for f in lint_source(source, path)] == []
    assert "time.perf_counter()" in source

    mutated = source.replace("time.perf_counter()", "0.0", 1)
    findings = lint_source(mutated, path)
    assert "RND00" in {f.code for f in findings}
    assert any("matches no finding" in f.message for f in findings)


# ----------------------------------------------------------------------
# RND06: dynamic code and the generated-source registry
# ----------------------------------------------------------------------

def test_bare_exec_flagged():
    findings = lint_source("exec(compile(src, '<x>', 'exec'))\n")
    assert [f.code for f in findings] == ["RND06"]


def test_bare_eval_flagged():
    findings = lint_source("value = eval(text)\n")
    assert [f.code for f in findings] == ["RND06"]


def test_generated_dispatch_modules_are_lint_clean():
    from repro.verify.lint import lint_generated_sources

    findings, count = lint_generated_sources()
    assert count >= 2  # the two built-in tables, at minimum
    assert findings == [], [f.message for f in findings]


def test_generated_header_required():
    """A registered module without the generated-by header is RND06."""
    from unittest import mock

    from repro.core.protocol import compile as protocol_compile
    from repro.verify.lint import lint_generated_sources

    with mock.patch.object(
            protocol_compile, "generated_sources",
            return_value={"<repro.core.protocol.compile:bogus>":
                          "x = 1\n"}):
        findings, _ = lint_generated_sources()
    assert any(f.code == "RND06" and "header" in f.message
               for f in findings)


def test_nondeterminism_in_generated_source_is_caught():
    """Mutation check on the table compiler's output: inject a wall
    clock read into the generated text and the registry lint must flag
    it exactly as it would in checked-in source."""
    from unittest import mock

    from repro.core.protocol import compile as protocol_compile
    from repro.core.protocol.table import HARDWARE_TABLE
    from repro.verify.lint import lint_generated_sources

    source = protocol_compile.generate_source(HARDWARE_TABLE)
    needle = "kind = message.kind"
    assert needle in source
    mutated = source.replace(
        needle, "kind = message.kind\n        import time\n"
        "        t = time.time()", 1)
    compile(mutated, "<mutated>", "exec")  # still valid python
    with mock.patch.object(
            protocol_compile, "generated_sources",
            return_value={protocol_compile.generated_filename(
                HARDWARE_TABLE): mutated}):
        findings, _ = lint_generated_sources()
    assert any(f.code == "RND02" and "time.time" in f.message
               for f in findings), [f.message for f in findings]
