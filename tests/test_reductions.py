"""Tests for the combining-tree global reduction primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.base import Workload, det_rand


class ReduceWorkload(Workload):
    """Every node contributes per-round values to a global reduction."""

    name = "reduce"

    def __init__(self, combine, values, rounds=1):
        self.combine = combine
        self.values = values  # values[node][round]
        self.rounds = rounds
        self.seen = {}

    def setup(self, machine):
        self.rid = machine.create_reduction(self.combine)

    def thread(self, machine, node_id):
        for rnd in range(self.rounds):
            yield ("compute", (node_id * 13) % 40)
            yield ("reduce", self.rid, self.values[node_id][rnd])
            self.seen.setdefault(rnd, set()).add(
                machine.reduction_result(self.rid))


def run_reduce(n, combine, values, rounds=1, protocol="DirnH5SNB"):
    machine = Machine(MachineParams(n_nodes=n), protocol=protocol)
    workload = ReduceWorkload(combine, values, rounds)
    machine.run(workload)
    return machine, workload


class TestReductions:
    def test_global_sum(self):
        values = [[node] for node in range(16)]
        _m, w = run_reduce(16, lambda a, b: a + b, values)
        assert w.seen[0] == {sum(range(16))}

    def test_global_max(self):
        values = [[det_rand(5, node) % 1000] for node in range(16)]
        _m, w = run_reduce(16, max, values)
        assert w.seen[0] == {max(v[0] for v in values)}

    def test_every_node_sees_the_same_result(self):
        values = [[node * 3] for node in range(64)]
        _m, w = run_reduce(64, lambda a, b: a + b, values)
        assert len(w.seen[0]) == 1

    def test_multiple_rounds_are_independent(self):
        rounds = 4
        values = [[node + 100 * rnd for rnd in range(rounds)]
                  for node in range(16)]
        _m, w = run_reduce(16, lambda a, b: a + b, values, rounds=rounds)
        for rnd in range(rounds):
            expected = sum(node + 100 * rnd for node in range(16))
            assert w.seen[rnd] == {expected}

    def test_single_node_machine(self):
        _m, w = run_reduce(1, lambda a, b: a + b, [[42]])
        assert w.seen[0] == {42}

    def test_unknown_reduction_rejected(self):
        machine = Machine(MachineParams(n_nodes=4), protocol="DirnH2SNB")
        with pytest.raises(ConfigurationError):
            machine.reductions.contribute(0, 99, 1, lambda: None)

    def test_reduction_messages_travel_the_fabric(self):
        machine = Machine(MachineParams(n_nodes=16), protocol="DirnH2SNB")
        workload = ReduceWorkload(lambda a, b: a + b,
                                  [[node] for node in range(16)])
        stats = machine.run(workload)
        assert stats.messages_by_kind().get("reduce_up", 0) > 0
        assert stats.messages_by_kind().get("reduce_down", 0) > 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_sum_correct_for_random_values(self, seed):
        values = [[det_rand(seed, node) % 10_000] for node in range(16)]
        _m, w = run_reduce(16, lambda a, b: a + b, values)
        assert w.seen[0] == {sum(v[0] for v in values)}

    def test_deterministic(self):
        values = [[node] for node in range(16)]
        m1, _ = run_reduce(16, lambda a, b: a + b, values)
        m2, _ = run_reduce(16, lambda a, b: a + b, values)
        assert m1.sim.now == m2.sim.now
