"""Translation validation (repro.verify.flow.transval).

Two families of tests: the validator proves both builtin tables'
generated modules clean (probe-on and probe-off), and ≥6 seeded
mutations of the generated source — each a realistic compiler bug —
are all caught with an issue naming the right construct.
"""

from __future__ import annotations

import pytest

from repro.core.protocol.compile import (ensure_builtin_tables_compiled,
                                         generate_source,
                                         generated_filename,
                                         generated_sources,
                                         generation_manifest)
from repro.core.protocol.table import HARDWARE_TABLE, SOFTWARE_ONLY_TABLE
from repro.verify.flow.transval import run_transval, validate_source

TABLES = (HARDWARE_TABLE, SOFTWARE_ONLY_TABLE)


# ----------------------------------------------------------------------
# The real generated modules are provably equivalent to their tables
# ----------------------------------------------------------------------

@pytest.mark.parametrize("table", TABLES, ids=[t.name for t in TABLES])
def test_generated_module_validates_clean(table):
    assert validate_source(table, generate_source(table)) == []


def test_run_transval_is_clean_over_the_registry():
    report = run_transval()
    assert report.clean
    assert report.passes == ["transval"]
    assert report.stats["transval.tables"] == 2
    assert report.stats["transval.rows"] > 0
    # Both tables carry defensive ``unreachable`` rows; the validator
    # proves they were elided, so the count must be positive.
    assert report.stats["transval.elided_rows"] > 0


def test_ensure_builtin_tables_compiled_populates_registry():
    tables = ensure_builtin_tables_compiled()
    registry = generated_sources()
    for table in tables:
        assert generated_filename(table) in registry


def test_cross_table_source_is_rejected():
    """The software-only module is not a valid hardware module."""
    issues = validate_source(HARDWARE_TABLE,
                             generate_source(SOFTWARE_ONLY_TABLE))
    assert issues


# ----------------------------------------------------------------------
# Seeded mutations: every corruption mode must be caught
# ----------------------------------------------------------------------

def _swap_once(source: str, a: str, b: str) -> str:
    assert a in source and b in source
    return (source.replace(a, "\x00", 1)
            .replace(b, a, 1)
            .replace("\x00", b, 1))


def _replace_once(source: str, old: str, new: str) -> str:
    assert old in source, f"mutation anchor missing: {old!r}"
    return source.replace(old, new, 1)


def _mutate_reordered_guards(source: str) -> str:
    # rreq/READ_ONLY evaluates reader_fits before broadcast_mode; a
    # compiler that reorders them changes which action fires.
    return _swap_once(source,
                      "if m_reader_fits(entry, src, block):",
                      "if m_broadcast_mode(entry, src, block):")


def _mutate_dropped_row(source: str) -> str:
    # Drop the unguarded read_overflow row that closes rreq/READ_ONLY.
    return _replace_once(
        source,
        "                m_read_overflow(entry, src, block)\n"
        "                return",
        "                return")


def _mutate_wrong_backend_bind(source: str) -> str:
    return _replace_once(source,
                         "    m_busy = backend.busy",
                         "    m_busy = backend.reader_fits")


def _mutate_unelied_unreachable_row(source: str) -> str:
    # Re-insert the model-checker-proven-unreachable defensive row
    # (rreq/READ_WRITE from_owner -> reply_busy) the compiler must elide.
    anchor = "                if m_migratory_block(entry, src, block):"
    inserted = ("                if m_from_owner(entry, src, block):\n"
                "                    m_reply_busy(entry, src, block)\n"
                "                    return\n")
    return _replace_once(source, anchor, inserted + anchor)


def _mutate_probe_call_in_fast_variant(source: str) -> str:
    # The first occurrence is inside handle_fast (emitted first).
    return _replace_once(
        source,
        "                m_read_absent(entry, src, block)\n"
        "                return",
        "                m_read_absent(entry, src, block)\n"
        "                emit(TransitionApplied(node=node_id, at=sim.now,"
        " event='rreq', src=src, block=block, before='absent',"
        " after=entry.state.value, rule='read_absent',"
        " next_label='read_only', busy=False, txn=None))\n"
        "                return")


def _mutate_swapped_state_arm(source: str) -> str:
    return _swap_once(source, "state is S_ABSENT", "state is S_READ_ONLY")


def _mutate_wrong_emit_rule(source: str) -> str:
    return _replace_once(source, "rule='read_absent'",
                         "rule='read_record'")


def _mutate_dropped_no_rule(source: str) -> str:
    # 'ack' is a strict get-policy with no wildcard rows: a missing
    # entry must raise via no_rule, not be silently dropped.
    return _replace_once(
        source,
        "                no_rule('ack', entry, src, block)\n"
        "                return",
        "                return")


MUTATIONS = [
    (_mutate_reordered_guards, "guard cascade"),
    (_mutate_dropped_row, "guard cascade"),
    (_mutate_wrong_backend_bind, "backend bind"),
    (_mutate_unelied_unreachable_row, "guard cascade"),
    (_mutate_probe_call_in_fast_variant, "probe"),
    (_mutate_swapped_state_arm, "state arms"),
    (_mutate_wrong_emit_rule, "emit claims a wrong 'rule'"),
    (_mutate_dropped_no_rule, "terminates with"),
]


@pytest.mark.parametrize("mutate,keyword", MUTATIONS,
                         ids=[m.__name__ for m, _ in MUTATIONS])
def test_seeded_mutation_is_caught(mutate, keyword):
    source = generate_source(HARDWARE_TABLE)
    mutated = mutate(source)
    assert mutated != source
    issues = validate_source(HARDWARE_TABLE, mutated)
    assert issues, f"{mutate.__name__} survived validation"
    assert any(keyword in issue for issue in issues), issues


def test_mutated_source_in_registry_fails_the_pass(monkeypatch):
    """run_transval validates what was actually registered, so a stale
    or corrupted registry entry is a finding, not a silent pass."""
    import repro.core.protocol.compile as compmod

    ensure_builtin_tables_compiled()
    registry = generated_sources()
    filename = generated_filename(HARDWARE_TABLE)
    registry[filename] = _mutate_dropped_row(registry[filename])
    monkeypatch.setattr(compmod, "generated_sources", lambda: registry)
    report = run_transval()
    assert not report.clean
    assert all(f.analysis == "transval" for f in report.findings)


# ----------------------------------------------------------------------
# Generation manifest
# ----------------------------------------------------------------------

@pytest.mark.parametrize("table", TABLES, ids=[t.name for t in TABLES])
def test_manifest_matches_table(table):
    manifest = generation_manifest(table)
    assert manifest["table"] == table.name
    assert list(manifest["events"]) == list(table.events())
    live_actions = {
        event: [r.action for r in table.rows_for(event)
                if not r.unreachable]
        for event in table.events()
    }
    for event, claims in manifest["events"].items():
        assert [r["action"] for r in claims["rows"]] == live_actions[event]
    for elided in manifest["elided_rows"]:
        row = table.rows_for(elided["event"])[elided["index"]]
        assert row.unreachable
        assert row.action == elided["action"]
    # Every bound method is a live guard or action, sorted.
    assert manifest["bound_methods"] == sorted(manifest["bound_methods"])
