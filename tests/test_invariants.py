"""Tests for the continuous protocol invariant checker."""

import pytest

from repro.core import messages as msg
from repro.core.protocol import (
    HARDWARE_TABLE,
    SOFTWARE_ONLY_TABLE,
    InvariantChecker,
    InvariantViolation,
    allowed_after,
)
from repro.core.protocol.backends import (
    LimitedPointerBackend,
    SoftwareOnlyBackend,
)
from repro.common.types import DirState
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.obs.events import MessageSent, TransitionApplied
from repro.workloads.worker import WorkerBenchmark

from tests.helpers import ScriptWorkload


def machine(protocol="DirnH2SNB", n=16):
    return Machine(MachineParams(n_nodes=n), protocol=protocol)


def transition(**overrides):
    base = dict(node=0, at=100, event=msg.RREQ, src=2, block=7,
                before="absent", after="read_only", rule="read_absent",
                next_label="read_only", busy=False)
    base.update(overrides)
    return TransitionApplied(**base)


class TestCleanRuns:
    @pytest.mark.parametrize("protocol", [
        "DirnHNBS-", "DirnH5SNB", "DirnH1SNB,ACK", "DirnH1SNB,LACK",
        "DirnH0SNB,ACK", "Dir1H1SB,LACK",
    ])
    def test_worker_run_has_zero_violations(self, protocol):
        m = machine(protocol=protocol)
        checker = InvariantChecker.attach(m)
        m.run(WorkerBenchmark(worker_set_size=6, iterations=2))
        checker.finish()
        assert checker.violations == []
        assert checker.transitions_checked > 0
        assert checker.messages_checked > 0
        checker.assert_clean()

    def test_checker_does_not_perturb_cycle_counts(self):
        wl = lambda: WorkerBenchmark(worker_set_size=6, iterations=2)
        plain = machine().run(wl()).run_cycles
        m = machine()
        checker = InvariantChecker.attach(m)
        assert m.run(wl()).run_cycles == plain
        checker.finish()

    def test_detach_stops_checking(self):
        m = machine()
        checker = InvariantChecker.attach(m)
        checker.detach()
        m.run(WorkerBenchmark(worker_set_size=4, iterations=1))
        assert checker.transitions_checked == 0
        assert checker.messages_checked == 0


class TestTransitionChecks:
    """Unit-level: feed the checker synthetic events and corrupt state."""

    def _checker(self, protocol="DirnH2SNB"):
        m = machine(protocol=protocol, n=4)
        return m, InvariantChecker(m)

    def test_dishonest_next_state_label_flagged(self):
        m, checker = self._checker()
        m.nodes[0].home.entry_for(7)  # absent entry, consistent structure
        checker._on_transition(transition(after="absent",
                                          next_label="read_only"))
        assert any("declared next state" in v for v in checker.violations)

    def test_same_label_with_state_change_flagged(self):
        m, checker = self._checker()
        m.nodes[0].home.entry_for(7)
        checker._on_transition(transition(
            before="read_only", after="read_write", next_label="same",
            rule="ack_countdown", event=msg.ACK))
        assert any("claims no state change" in v
                   for v in checker.violations)

    def test_busy_exclusivity_flagged(self):
        m, checker = self._checker()
        m.nodes[0].home.entry_for(7)
        checker._on_transition(transition(
            busy=True, rule="read_absent", next_label="read_only"))
        assert any("busy-state exclusivity" in v
                   for v in checker.violations)

    def test_busy_reply_rules_pass(self):
        m, checker = self._checker()
        m.nodes[0].home.entry_for(7)
        checker._on_transition(transition(
            busy=True, before="write_transaction",
            after="write_transaction", rule="reply_busy",
            next_label="same"))
        assert checker.violations == []

    def test_duplicated_pointer_flagged(self):
        m, checker = self._checker()
        entry = m.nodes[0].home.entry_for(7)
        entry.state = DirState.READ_ONLY
        entry.pointers.extend([2, 2])
        checker._on_transition(transition(busy=False))
        assert any("duplicated hardware pointers" in v
                   for v in checker.violations)

    def test_read_write_with_no_tracked_node_flagged(self):
        m, checker = self._checker()
        entry = m.nodes[0].home.entry_for(7)
        entry.state = DirState.READ_WRITE
        checker._on_transition(transition(
            event=msg.WREQ, after="read_write", next_label="read_write",
            rule="write_absent"))
        assert any("READ_WRITE with 0 tracked" in v
                   for v in checker.violations)

    def test_transient_without_requester_flagged(self):
        m, checker = self._checker()
        entry = m.nodes[0].home.entry_for(7)
        entry.state = DirState.WRITE_TRANSACTION
        entry.pending_requester = None
        checker._on_transition(transition(
            event=msg.WREQ, after="write_transaction",
            next_label="write_transaction", rule="write_invalidate"))
        assert any("without a pending requester" in v
                   for v in checker.violations)

    def test_h0_read_write_owner_mismatch_flagged(self):
        m, checker = self._checker(protocol="DirnH0SNB,ACK")
        entry = m.nodes[0].home.entry_for(7)
        entry.state = DirState.READ_WRITE
        entry.owner = 2
        entry.sharers = {2, 3}
        checker._on_transition(transition(
            event=msg.WREQ, after="read_write", next_label="read_write",
            rule="write_grant"))
        assert any("H0 READ_WRITE" in v for v in checker.violations)

    def test_strict_mode_raises_immediately(self):
        m = machine(n=4)
        checker = InvariantChecker(m, strict=True)
        m.nodes[0].home.entry_for(7)
        with pytest.raises(InvariantViolation):
            checker._on_transition(transition(after="absent",
                                              next_label="read_only"))


class TestMessageChecks:
    def _msg(self, kind, block=7, src=0, dst=2):
        return MessageSent(src=src, dst=dst, kind=kind, size_flits=2,
                           sent_at=50, delivered_at=60, block=block)

    def test_ack_without_invalidation_flagged(self):
        m = machine(n=4)
        checker = InvariantChecker(m)
        checker._on_message(self._msg(msg.ACK))
        assert any("without a matching invalidation" in v
                   for v in checker.violations)

    def test_matched_inv_ack_pairs_pass(self):
        m = machine(n=4)
        checker = InvariantChecker(m)
        checker._on_message(self._msg(msg.INV))
        checker._on_message(self._msg(msg.ACK))
        assert checker.violations == []
        assert checker.finish() == []

    def test_unacknowledged_invalidation_flagged_at_finish(self):
        m = machine(n=4)
        checker = InvariantChecker(m)
        checker._on_message(self._msg(msg.INV))
        assert any("never acknowledged" in v for v in checker.finish())

    def test_assert_clean_raises_with_report(self):
        m = machine(n=4)
        checker = InvariantChecker(m)
        checker._on_message(self._msg(msg.ACK))
        with pytest.raises(InvariantViolation, match="1 protocol"):
            checker.assert_clean()

    def test_wdata_grant_with_surviving_reader_flagged(self):
        m = machine(n=4)
        a = m.heap.alloc_block(0)
        blk = a >> m.params.block_shift
        m.run(ScriptWorkload({1: [("read", a)], 2: [("read", a)]}))
        checker = InvariantChecker(m)
        checker._on_message(self._msg(msg.WDATA, block=blk, dst=1))
        assert any("still holds" in v for v in checker.violations)


class TestTableClaims:
    def test_allowed_after_grammar(self):
        assert allowed_after(None) is None
        assert allowed_after("deferred") is None
        assert allowed_after("same") == "same"
        assert allowed_after("read_only|absent") == frozenset(
            {DirState.READ_ONLY, DirState.ABSENT})

    @pytest.mark.parametrize("table,backend_cls", [
        (HARDWARE_TABLE, LimitedPointerBackend),
        (SOFTWARE_ONLY_TABLE, SoftwareOnlyBackend),
    ])
    def test_every_row_resolves_on_its_backend(self, table, backend_cls):
        for row in table.transitions:
            assert callable(getattr(backend_cls, row.action))
            if row.guard is not None:
                assert callable(getattr(backend_cls, row.guard))
            if row.next_state is not None:
                allowed_after(row.next_state)  # label parses

    def test_every_event_has_a_policy(self):
        for table in (HARDWARE_TABLE, SOFTWARE_ONLY_TABLE):
            assert set(table.policies) == set(table.events())
