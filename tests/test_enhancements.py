"""Tests for the Section 7 enhancements: per-block protocol
reconfiguration, profiling/read-only optimization, invalidation modes,
and the FIFO lock data type."""

import pytest

from repro.analysis.profiling import (
    AccessProfiler,
    apply_read_only_protocol,
    read_only_blocks,
)
from repro.common.errors import ConfigurationError, ProtocolStateError
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.base import Workload

from tests.helpers import ScriptWorkload, check_coherence


def machine(n=16, protocol="DirnH2SNB", **kwargs):
    return Machine(MachineParams(n_nodes=n), protocol=protocol, **kwargs)


class TestPerBlockProtocols:
    def test_broadcast_override_removes_read_traps(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.configure_block(addr, "Dir1H1SB,LACK")
        scripts = {node: [("compute", 40 * node), ("read", addr)]
                   for node in range(1, 13)}
        m.run(ScriptWorkload(scripts))
        assert m.nodes[0].stats.traps.get("read_overflow", 0) == 0

    def test_full_map_override_never_traps(self):
        m = machine(protocol="DirnH1SNB,LACK")
        addr = m.heap.alloc_block(0)
        m.configure_block(addr, "DirnHNBS-")
        scripts = {node: [("compute", 40 * node), ("read", addr),
                          ("barrier",)] for node in range(1, 13)}
        scripts[13] = [("barrier",), ("write", addr)]
        m.run(ScriptWorkload(scripts))
        assert sum(m.nodes[0].stats.traps.values()) == 0
        # ... and the full-map entry still invalidates all 12 readers.
        assert m.nodes[0].stats.invalidations_hw == 12

    def test_default_blocks_unaffected(self):
        m = machine()
        special = m.heap.alloc_block(0)
        normal = m.heap.alloc_block(0)
        m.configure_block(special, "DirnHNBS-")
        scripts = {node: [("compute", 40 * node), ("read", normal)]
                   for node in range(1, 8)}
        m.run(ScriptWorkload(scripts))
        assert m.nodes[0].stats.traps["read_overflow"] > 0

    def test_override_rejected_on_full_map_machine(self):
        m = machine(protocol="DirnHNBS-")
        addr = m.heap.alloc_block(0)
        with pytest.raises(ConfigurationError):
            m.configure_block(addr, "DirnH2SNB")

    def test_software_only_cannot_be_mixed(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        with pytest.raises(ConfigurationError):
            m.configure_block(addr, "DirnH0SNB,ACK")
        m2 = machine(protocol="DirnH0SNB,ACK")
        addr2 = m2.heap.alloc_block(0)
        with pytest.raises(ConfigurationError):
            m2.configure_block(addr2, "DirnH2SNB")

    def test_configure_after_reference_rejected(self):
        m = machine()
        addr = m.heap.alloc_block(0)
        m.run(ScriptWorkload({1: [("read", addr)]}))
        with pytest.raises(ConfigurationError):
            m.configure_block(addr, "DirnHNBS-")

    def test_configure_range_covers_all_blocks(self):
        m = machine()
        addr = m.heap.alloc(0, 4 * m.params.block_words)
        m.configure_range(addr, 4 * m.params.block_words, "DirnHNBS-")
        for i in range(4):
            block = (addr >> m.params.block_shift) + i
            assert m.protocol_for_block(block).full_map

    def test_mixed_protocols_stay_coherent(self):
        m = machine()
        a = m.heap.alloc_block(0)
        b = m.heap.alloc_block(0)
        m.configure_block(a, "Dir1H1SB,LACK")
        scripts = {}
        for node in range(1, 9):
            scripts[node] = [("compute", 30 * node), ("read", a),
                             ("read", b), ("barrier",)]
        scripts[9] = [("barrier",), ("write", a), ("write", b)]
        m.run(ScriptWorkload(scripts))
        assert check_coherence(m) == []


class TestProfiling:
    def test_profiler_records_reads_and_writes(self):
        m = machine()
        m.profiler = AccessProfiler()
        addr = m.heap.alloc_block(0)
        blk = addr >> m.params.block_shift
        m.run(ScriptWorkload(
            {1: [("read", addr), ("barrier",)],
             2: [("barrier",), ("write", addr)]},
        ))
        profile = m.profiler.blocks[blk]
        assert 1 in profile.readers
        assert 2 in profile.writers
        assert profile.write_grants == 1

    def test_read_only_detection(self):
        profiler = AccessProfiler()
        for node in range(10):
            profiler.record(100, node, write=False)
        profiler.record(200, 0, write=True)
        for node in range(10):
            profiler.record(200, node, write=False)
            profiler.record(200, node, write=True)
        assert read_only_blocks(profiler, min_readers=6) == [100]

    def test_read_only_optimization_eliminates_read_traps(self):
        def scripts():
            return {node: [("compute", 40 * node), ("read", None)]
                    for node in range(1, 13)}

        # Profile.
        m1 = machine()
        m1.profiler = AccessProfiler()
        addr = m1.heap.alloc_block(0)
        s = scripts()
        for ops in s.values():
            ops[1] = ("read", addr)
        m1.run(ScriptWorkload(s))
        baseline_traps = sum(m1.nodes[0].stats.traps.values())
        candidates = read_only_blocks(m1.profiler, min_readers=6)
        assert candidates == [addr >> m1.params.block_shift]

        # Optimize on a fresh machine (same deterministic layout).
        m2 = machine()
        addr2 = m2.heap.alloc_block(0)
        assert addr2 == addr
        assert apply_read_only_protocol(m2, candidates) == 1
        s = scripts()
        for ops in s.values():
            ops[1] = ("read", addr2)
        m2.run(ScriptWorkload(s))
        assert baseline_traps > 0
        assert sum(m2.nodes[0].stats.traps.values()) == 0


class TestInvalidationModes:
    def scenario(self, mode, readers=8):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                    invalidation_mode=mode)
        addr = m.heap.alloc_block(0)
        scripts = {}
        for i, node in enumerate(range(1, readers + 1)):
            scripts[node] = [("compute", 40 * i), ("read", addr),
                             ("barrier",)]
        scripts[15] = [("barrier",), ("write", addr)]
        m.run(ScriptWorkload(scripts))
        return m

    def test_sequential_chains_acks(self):
        m = self.scenario("sequential")
        home = m.nodes[0].stats
        # 8 targets: 7 chained ack traps + 1 final.
        assert home.traps["ack_software"] == 7
        assert home.traps["ack_last"] == 1
        assert home.invalidations_sw == 8

    def test_parallel_uses_hardware_counting(self):
        m = self.scenario("parallel")
        home = m.nodes[0].stats
        assert home.traps.get("ack_software", 0) == 0
        assert home.invalidations_sw == 8

    def test_dynamic_picks_parallel_for_wide_sets(self):
        m = self.scenario("dynamic", readers=8)
        assert m.nodes[0].stats.traps.get("ack_software", 0) == 0

    def test_dynamic_picks_sequential_for_small_sets(self):
        m = self.scenario("dynamic", readers=6)
        # 6 readers overflow the 5 pointers -> software write; <= 4
        # would be sequential, 6 targets is parallel.  Use 8... the
        # threshold is 4, so test with a 1-pointer protocol instead:
        m2 = Machine(MachineParams(n_nodes=16), protocol="DirnH1SNB",
                     invalidation_mode="dynamic")
        addr = m2.heap.alloc_block(0)
        scripts = {}
        for i, node in enumerate(range(1, 4)):
            scripts[node] = [("compute", 40 * i), ("read", addr),
                             ("barrier",)]
        scripts[15] = [("barrier",), ("write", addr)]
        m2.run(ScriptWorkload(scripts))
        assert m2.nodes[0].stats.traps["ack_software"] == 2  # 3 targets

    def test_sequential_slower_than_parallel(self):
        slow = self.scenario("sequential").sim.now
        fast = self.scenario("parallel").sim.now
        assert fast < slow

    def test_modes_preserve_coherence(self):
        for mode in ("parallel", "sequential", "dynamic"):
            m = self.scenario(mode)
            assert check_coherence(m) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(MachineParams(n_nodes=4), protocol="DirnH2SNB",
                    invalidation_mode="turbo")


class LockedCounter(Workload):
    """Shared counter protected by a FIFO lock."""

    name = "locked-counter"

    def __init__(self, iters=3, think=25):
        self.iters = iters
        self.think = think
        self.counter = 0
        self.sections = []  # (node, enter, exit)

    def setup(self, machine):
        self.lock = machine.create_lock(home=0)
        self.shared = machine.heap.alloc_block(1)

    def thread(self, machine, node_id):
        for _ in range(self.iters):
            yield ("lock", self.lock)
            enter = machine.sim.now
            yield ("read", self.shared)
            yield ("compute", self.think)
            self.counter += 1
            yield ("write", self.shared)
            self.sections.append((node_id, enter, machine.sim.now))
            yield ("unlock", self.lock)
            yield ("compute", self.think)


class TestLocks:
    def run_counter(self, protocol="DirnH5SNB", n=16, iters=3):
        m = Machine(MachineParams(n_nodes=n), protocol=protocol)
        w = LockedCounter(iters=iters)
        m.run(w)
        return m, w

    def test_all_increments_happen(self):
        m, w = self.run_counter()
        assert w.counter == 16 * 3

    def test_mutual_exclusion(self):
        m, w = self.run_counter()
        intervals = sorted((e, x) for _n, e, x in w.sections)
        for (e1, x1), (e2, _x2) in zip(intervals, intervals[1:]):
            assert x1 <= e2

    def test_fifo_grant_order(self):
        m, w = self.run_counter()
        state = m.locks.locks[w.lock]
        assert state.acquisitions == 16 * 3
        assert state.holder is None
        # Grant times strictly increase (serial handoff).
        times = [t for _n, t in state.history]
        assert times == sorted(times)

    def test_locks_work_on_every_protocol(self):
        for protocol in ("DirnHNBS-", "DirnH0SNB,ACK", "DirnH1SNB,ACK"):
            m, w = self.run_counter(protocol=protocol, iters=2)
            assert w.counter == 16 * 2
            assert check_coherence(m) == []

    def test_unknown_lock_rejected(self):
        m = machine()
        with pytest.raises(ConfigurationError):
            m.locks.acquire(0, 999, lambda: None)

    def test_release_by_non_holder_detected(self):
        m = machine(n=4)
        lock = m.create_lock(home=0)

        class BadRelease(Workload):
            name = "bad"

            def setup(self, mm):
                pass

            def thread(self, mm, node_id):
                if node_id == 1:
                    yield ("unlock", lock)
                yield ("compute", 5)

        with pytest.raises(ProtocolStateError):
            m.run(BadRelease())
