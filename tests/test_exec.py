"""Tests for the parallel experiment runner (repro.exec).

Covers the determinism contract end to end: canonical job keys, the
RunStats JSON round trip, the on-disk cache (hit/miss, corruption,
version invalidation), worker-count resolution, dedup, and the
headline property — identical driver output at ``--jobs 1``,
``--jobs 2``, and from a warm cache.
"""

import json
import os

import pytest

from repro.analysis.experiments import fig2_worker_ratios, run_one
from repro.exec import JobRunner, ResultCache, make_job, run_jobs
from repro.exec.cache import cache_key
from repro.exec.jobs import canonical_json, execute_job, job_key
from repro.exec.pool import resolve_jobs
from repro.machine.params import MachineParams
from repro.workloads.worker import WorkerBenchmark

TINY = dict(worker_set_size=2, iterations=1)


def tiny_job(protocol="DirnH5SNB", n_nodes=16, **kwargs):
    merged = dict(TINY, **kwargs)
    return make_job(WorkerBenchmark, merged, protocol=protocol,
                    n_nodes=n_nodes)


# ----------------------------------------------------------------------
# Job keys
# ----------------------------------------------------------------------

class TestJobKeys:
    def test_kwarg_order_does_not_change_key(self):
        a = make_job(WorkerBenchmark,
                     {"worker_set_size": 2, "iterations": 1},
                     protocol="DirnH5SNB", n_nodes=16)
        b = make_job(WorkerBenchmark,
                     {"iterations": 1, "worker_set_size": 2},
                     protocol="DirnH5SNB", n_nodes=16)
        assert a == b
        assert job_key(a) == job_key(b)
        assert canonical_json(a) == canonical_json(b)

    def test_key_is_readable(self):
        key = job_key(tiny_job())
        assert key.startswith("workerbenchmark:DirnH5SNB:")

    def test_distinct_specs_get_distinct_keys(self):
        base = tiny_job()
        assert job_key(base) != job_key(tiny_job(protocol="DirnH2SNB"))
        assert job_key(base) != job_key(tiny_job(n_nodes=64))
        assert job_key(base) != job_key(tiny_job(iterations=2))

    def test_explicit_params_equal_shorthand(self):
        shorthand = tiny_job()
        explicit = make_job(
            WorkerBenchmark, dict(TINY), protocol="DirnH5SNB",
            params=MachineParams(n_nodes=16, victim_cache_enabled=True,
                                 perfect_ifetch=False))
        assert job_key(shorthand) == job_key(explicit)

    def test_any_machine_param_changes_key(self):
        base = MachineParams(n_nodes=16)
        tweaked = MachineParams(n_nodes=16, victim_cache_enabled=True)
        a = make_job(WorkerBenchmark, dict(TINY), protocol="DirnH5SNB",
                     params=base)
        b = make_job(WorkerBenchmark, dict(TINY), protocol="DirnH5SNB",
                     params=tweaked)
        assert job_key(a) != job_key(b)


# ----------------------------------------------------------------------
# RunStats JSON round trip
# ----------------------------------------------------------------------

def test_runstats_json_round_trip():
    stats = execute_job(tiny_job())
    encoded = json.dumps(stats.to_json_dict(), sort_keys=True)
    restored = type(stats).from_json_dict(json.loads(encoded))
    assert restored.run_cycles == stats.run_cycles
    assert restored.sequential_cycles == stats.sequential_cycles
    assert restored.n_nodes == stats.n_nodes
    assert restored.worker_set_histogram == stats.worker_set_histogram
    assert restored.per_node == stats.per_node
    assert restored.handler_samples == stats.handler_samples
    # And the round trip is a fixed point: re-encoding is identical.
    assert json.dumps(restored.to_json_dict(), sort_keys=True) == encoded


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = tiny_job()
        assert cache.get(job) is None
        stats = execute_job(job)
        path = cache.put(job, stats)
        assert os.path.isfile(path)
        got = cache.get(job)
        assert got is not None
        assert got.run_cycles == stats.run_cycles
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = tiny_job()
        cache.put(job, execute_job(job))
        with open(cache.path_for(job), "w", encoding="utf-8") as fh:
            fh.write("{truncated")
        assert cache.get(job) is None

    def test_machine_params_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = tiny_job()
        cache.put(job, execute_job(job))
        tweaked = make_job(
            WorkerBenchmark, dict(TINY), protocol="DirnH5SNB",
            params=MachineParams(n_nodes=16, cache_bytes=32 * 1024))
        assert cache_key(job) != cache_key(tweaked)
        assert cache.get(tweaked) is None

    def test_cost_model_version_bump_invalidates(self, tmp_path,
                                                 monkeypatch):
        from repro.core.software import costmodel

        cache = ResultCache(str(tmp_path))
        job = tiny_job()
        cache.put(job, execute_job(job))
        assert cache.get(job) is not None
        monkeypatch.setattr(costmodel, "COST_MODEL_VERSION",
                            costmodel.COST_MODEL_VERSION + 1)
        assert cache.get(job) is None

    def test_prune_removes_stale_entries(self, tmp_path, monkeypatch):
        from repro.core.software import costmodel

        cache = ResultCache(str(tmp_path))
        job = tiny_job()
        stats = execute_job(job)
        cache.put(job, stats)
        monkeypatch.setattr(costmodel, "COST_MODEL_VERSION",
                            costmodel.COST_MODEL_VERSION + 1)
        cache.put(job, stats)  # current-version entry survives
        assert cache.prune() == 1
        assert cache.get(job) is not None


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------

class TestResolveJobs:
    def test_ints_and_strings(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs("2") == 2
        assert resolve_jobs(" 3 ") == 3

    def test_auto_is_at_least_one(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs("AUTO") >= 1

    def test_auto_on_one_cpu_host(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_jobs("auto") == 1

    def test_auto_when_cpu_count_unknown(self, monkeypatch):
        # os.cpu_count() may return None; "auto" must still be sane
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs("auto") == 1

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_jobs(" Auto ") == 8

    @pytest.mark.parametrize("bad", [0, -1, "0", "-3", "junk", "1.5", ""])
    def test_rejects_junk(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


# ----------------------------------------------------------------------
# Runner: dedup, memo, parallel determinism
# ----------------------------------------------------------------------

class TestJobRunner:
    def test_duplicates_run_once(self):
        job = tiny_job()
        runner = JobRunner(jobs=1)
        results = runner.run([job, job, job])
        assert len(results) == 1
        assert runner.jobs_executed == 1
        assert runner.jobs_deduplicated == 2

    def test_memo_spans_plans(self):
        runner = JobRunner(jobs=1)
        runner.run([tiny_job()])
        runner.run([tiny_job()])
        assert runner.jobs_executed == 1
        assert runner.memo_hits == 1

    def test_parallel_matches_serial(self):
        plan = [tiny_job(), tiny_job(protocol="DirnH2SNB"),
                tiny_job(protocol="DirnHNBS-")]
        serial = run_jobs(plan, jobs=1)
        parallel = run_jobs(plan, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].run_cycles == parallel[key].run_cycles

    def test_cache_feeds_runner(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = [tiny_job()]
        JobRunner(jobs=1, cache=cache).run(plan)
        warm = JobRunner(jobs=1, cache=cache)
        results = warm.run(plan)
        assert warm.jobs_executed == 0
        assert cache.hits == 1
        assert results[job_key(plan[0])].run_cycles > 0


# ----------------------------------------------------------------------
# Attribution as a spec dimension
# ----------------------------------------------------------------------

class TestAttributionJobs:
    def test_flag_changes_the_key_only_when_enabled(self):
        plain = tiny_job()
        attributed = make_job(WorkerBenchmark, TINY,
                              protocol="DirnH5SNB", n_nodes=16,
                              attribution=True)
        assert job_key(plain) != job_key(attributed)
        # the canonical form of a plain job is untouched by the new
        # dimension — every historical cache key survives
        assert "attribution" not in canonical_json(plain)
        assert '"attribution":true' in canonical_json(attributed)

    def test_executed_job_carries_the_artifact(self):
        stats = execute_job(make_job(WorkerBenchmark, TINY,
                                     protocol="DirnH5SNB", n_nodes=16,
                                     attribution=True))
        doc = stats.attribution
        assert doc is not None
        assert doc["schema"] == "repro-attribution/1"
        assert doc["residual"] == 0
        assert sum(doc["buckets"].values()) == doc["stall_cycles"]

    def test_plain_job_has_no_artifact(self):
        stats = execute_job(tiny_job())
        assert stats.attribution is None
        assert "attribution" not in stats.to_json_dict()

    def test_attribution_does_not_change_the_numbers(self):
        plain = execute_job(tiny_job())
        attributed = execute_job(make_job(WorkerBenchmark, TINY,
                                          protocol="DirnH5SNB",
                                          n_nodes=16,
                                          attribution=True))
        assert plain.run_cycles == attributed.run_cycles
        assert plain.total("stall_cycles") == \
            attributed.total("stall_cycles")

    def test_runner_upgrade_keeps_submitted_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = [tiny_job(), tiny_job(protocol="DirnH2SNB")]
        runner = JobRunner(jobs=1, cache=cache, attribution=True)
        results = runner.run(plan)
        # callers look results up by the key they planned with ...
        assert set(results) == {job_key(job) for job in plan}
        for job in plan:
            assert results[job_key(job)].attribution is not None
        # ... while the cache holds the attributed spec, so a plain
        # runner does not see these entries
        plain_runner = JobRunner(jobs=1, cache=cache)
        plain_runner.run([tiny_job()])
        assert plain_runner.jobs_executed == 1

    def test_artifacts_identical_across_jobs_values(self):
        # txn ids are per-machine, so serial and fanned-out execution
        # produce byte-identical attribution artifacts
        plan = [make_job(WorkerBenchmark, TINY, protocol="DirnH5SNB",
                         n_nodes=16, attribution=True),
                make_job(WorkerBenchmark, TINY, protocol="DirnH2SNB",
                         n_nodes=16, attribution=True)]
        serial = JobRunner(jobs=1).run(plan)
        parallel = JobRunner(jobs="auto").run(plan)
        assert serial.keys() == parallel.keys()
        for key in serial:
            blob_serial = json.dumps(serial[key].attribution,
                                     sort_keys=True)
            blob_parallel = json.dumps(parallel[key].attribution,
                                       sort_keys=True)
            assert blob_serial == blob_parallel

    def test_artifact_round_trips_through_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = [tiny_job()]
        runner = JobRunner(jobs=1, cache=cache, attribution=True)
        fresh = runner.run(plan)
        warm = JobRunner(jobs=1, cache=cache, attribution=True)
        replayed = warm.run(plan)
        assert warm.jobs_executed == 0
        key = job_key(plan[0])
        assert json.dumps(fresh[key].attribution, sort_keys=True) == \
            json.dumps(replayed[key].attribution, sort_keys=True)


# ----------------------------------------------------------------------
# Driver-level determinism: the headline property
# ----------------------------------------------------------------------

def test_fig2_identical_serial_parallel_and_cached(tmp_path):
    kwargs = dict(sizes=(1, 2), protocols=("DirnH5SNB",), n_nodes=16,
                  iterations=1)
    serial = fig2_worker_ratios(**kwargs, runner=JobRunner(jobs=1))
    parallel = fig2_worker_ratios(**kwargs, runner=JobRunner(jobs=2))
    cache = ResultCache(str(tmp_path))
    fig2_worker_ratios(**kwargs, runner=JobRunner(jobs=1, cache=cache))
    cached = fig2_worker_ratios(**kwargs,
                                runner=JobRunner(jobs=1, cache=cache))
    assert serial == parallel == cached
    assert cache.hits > 0


# ----------------------------------------------------------------------
# run_one params/shorthand conflict (bugfix)
# ----------------------------------------------------------------------

class TestRunOneConflict:
    def test_params_plus_shorthand_raises(self):
        workload = WorkerBenchmark(**TINY)
        params = MachineParams(n_nodes=16)
        with pytest.raises(ValueError, match="n_nodes"):
            run_one(workload, "DirnH5SNB", n_nodes=32, params=params)
        with pytest.raises(ValueError, match="victim_cache"):
            run_one(workload, "DirnH5SNB", victim_cache=False,
                    params=params)
        with pytest.raises(ValueError, match="perfect_ifetch"):
            run_one(workload, "DirnH5SNB", perfect_ifetch=True,
                    params=params)

    def test_params_alone_is_fine(self):
        stats = run_one(WorkerBenchmark(**TINY), "DirnH5SNB",
                        params=MachineParams(n_nodes=16))
        assert stats.n_nodes == 16


# ----------------------------------------------------------------------
# invalidation_mode as a spec dimension
# ----------------------------------------------------------------------

class TestInvalidationModeSpec:
    def test_default_mode_keeps_historical_canonical_form(self):
        job = tiny_job()
        assert "invalidation_mode" not in canonical_json(job)
        explicit = make_job(WorkerBenchmark, TINY, protocol="DirnH5SNB",
                            n_nodes=16, invalidation_mode="parallel")
        assert job_key(explicit) == job_key(job)

    def test_non_default_mode_changes_the_key(self):
        base = tiny_job()
        seq = make_job(WorkerBenchmark, TINY, protocol="DirnH5SNB",
                       n_nodes=16, invalidation_mode="sequential")
        assert job_key(seq) != job_key(base)
        assert '"invalidation_mode":"sequential"' in canonical_json(seq)

    def test_mode_reaches_the_machine(self):
        kwargs = dict(worker_set_size=4, iterations=1)
        par = make_job(WorkerBenchmark, kwargs, protocol="DirnH2SNB",
                       n_nodes=16)
        seq = make_job(WorkerBenchmark, kwargs, protocol="DirnH2SNB",
                       n_nodes=16, invalidation_mode="sequential")
        # Sequential invalidations serialize the fan-out, so the same
        # workload costs more cycles — proof the dimension is live.
        assert execute_job(seq).run_cycles > execute_job(par).run_cycles


# ----------------------------------------------------------------------
# plan_unique: dedup shared by JobRunner and FarmExecutor
# ----------------------------------------------------------------------

class TestPlanUnique:
    def test_coalesces_duplicates_in_first_appearance_order(self):
        from repro.exec.pool import plan_unique

        a, b = tiny_job(), tiny_job(protocol="full-map")
        aliases, unique, dups = plan_unique([a, b, a, a])
        assert dups == 2
        assert list(unique) == [job_key(a), job_key(b)]
        assert aliases == {job_key(a): job_key(a),
                           job_key(b): job_key(b)}

    def test_attribution_upgrade_aliases_plain_keys(self):
        import dataclasses

        from repro.exec.pool import plan_unique

        plain = tiny_job()
        attributed = dataclasses.replace(plain, attribution=True)
        aliases, unique, dups = plan_unique([plain], attribution=True)
        assert aliases == {job_key(plain): job_key(attributed)}
        assert list(unique) == [job_key(attributed)]
        assert unique[job_key(attributed)].attribution


# ----------------------------------------------------------------------
# FarmExecutor: the long-running service executor
# ----------------------------------------------------------------------

class TestFarmExecutor:
    def test_run_matches_jobrunner_byte_for_byte(self, tmp_path):
        from repro.exec.pool import FarmExecutor

        plan = [tiny_job(), tiny_job(protocol="full-map"), tiny_job()]
        expected = JobRunner(jobs=1).run(plan)
        with FarmExecutor(jobs=2, worker_pool="thread") as farm:
            got = farm.run(plan)
        assert sorted(got) == sorted(expected)
        for key in expected:
            assert got[key].to_json_dict() == expected[key].to_json_dict()

    def test_submit_sources_queued_memo_cache(self, tmp_path):
        from repro.exec.pool import FarmExecutor

        cache = ResultCache(str(tmp_path / "cache"))
        job = tiny_job()
        with FarmExecutor(jobs=1, cache=cache,
                          worker_pool="thread") as farm:
            first = farm.submit(job)
            stats = first.future.result(timeout=120)
            assert first.source == "queued"
            again = farm.submit(job)
            assert again.source == "memo"
            assert again.future.result(timeout=120) is stats
        # a fresh farm sharing the cache resolves from disk
        with FarmExecutor(jobs=1, cache=ResultCache(str(tmp_path / "cache")),
                          worker_pool="thread") as farm:
            warmed = farm.submit(job)
            assert warmed.source == "cache"
            assert warmed.future.result(timeout=120).to_json_dict() \
                == stats.to_json_dict()

    def test_concurrent_submissions_of_one_key_execute_once(
            self, monkeypatch):
        import threading

        import repro.exec.pool as pool_mod
        from repro.exec.pool import FarmExecutor

        release = threading.Event()
        calls = []
        real_execute = pool_mod.execute_job

        def gated_execute(job, *args, **kwargs):
            calls.append(job_key(job))
            assert release.wait(60)
            return real_execute(job, *args, **kwargs)

        monkeypatch.setattr(pool_mod, "execute_job", gated_execute)
        with FarmExecutor(jobs=2, worker_pool="thread") as farm:
            first = farm.submit(tiny_job())
            second = farm.submit(tiny_job())
            assert first.source == "queued"
            assert second.source == "inflight"
            assert second.future is first.future
            release.set()
            first.future.result(timeout=120)
            counters = farm.counters()
        assert calls == [job_key(tiny_job())]
        assert counters["jobs_executed"] == 1
        assert counters["inflight_hits"] == 1

    def test_failed_job_surfaces_and_is_not_memoized(self, monkeypatch):
        import repro.exec.pool as pool_mod
        from repro.exec.pool import FarmExecutor

        real_execute = pool_mod.execute_job
        blow_up = {"armed": True}

        def flaky_execute(job, *args, **kwargs):
            if blow_up["armed"]:
                blow_up["armed"] = False
                raise RuntimeError("transient failure")
            return real_execute(job, *args, **kwargs)

        monkeypatch.setattr(pool_mod, "execute_job", flaky_execute)
        with FarmExecutor(jobs=1, worker_pool="thread") as farm:
            failed = farm.submit(tiny_job())
            with pytest.raises(RuntimeError, match="transient"):
                failed.future.result(timeout=120)
            retried = farm.submit(tiny_job())
            assert retried.source == "queued"  # failure not memoized
            assert retried.future.result(timeout=120).run_cycles > 0

    def test_close_is_idempotent(self):
        from repro.exec.pool import FarmExecutor

        farm = FarmExecutor(jobs=1, worker_pool="thread")
        farm.submit(tiny_job()).future.result(timeout=120)
        farm.close()
        farm.close()
        with pytest.raises(RuntimeError):
            farm.submit(tiny_job())


# ----------------------------------------------------------------------
# Cache under racing writers
# ----------------------------------------------------------------------

class TestCacheRacingWriters:
    def test_many_writers_one_intact_entry(self, tmp_path):
        import threading

        cache = ResultCache(str(tmp_path / "cache"))
        job = tiny_job()
        stats = execute_job(job)
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait(30)
            cache.put(job, stats)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # whoever won, the entry is whole and round-trips
        path = cache.path_for(job)
        json.loads(open(path, encoding="utf-8").read())
        fresh = ResultCache(str(tmp_path / "cache"))
        assert fresh.get(job).to_json_dict() == stats.to_json_dict()

    def test_corrupt_existing_entry_is_replaced(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = tiny_job()
        stats = execute_job(job)
        cache.put(job, stats)
        path = cache.path_for(job)
        with open(path, "w") as fh:
            fh.write("{torn")
        cache.put(job, stats)  # CAS fallback: unreadable entry replaced
        assert ResultCache(str(tmp_path / "cache")).get(job) is not None

    def test_existing_good_entry_wins_the_race(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = tiny_job()
        stats = execute_job(job)
        cache.put(job, stats)
        before = open(cache.path_for(job), "rb").read()
        cache.put(job, stats)  # deterministic sim: same bytes either way
        assert open(cache.path_for(job), "rb").read() == before
