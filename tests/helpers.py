"""Shared test utilities: scripted workloads and invariant checkers."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.base import Op, Workload


class ScriptWorkload(Workload):
    """Executes a fixed per-node list of operations.

    ``scripts`` maps node id -> list of ops.  Barriers are machine-wide,
    so every thread is automatically padded with trailing barriers up to
    the maximum barrier count any script (or ``barriers``) uses.
    """

    name = "script"

    def __init__(self, scripts: Dict[int, List[Op]],
                 barriers: int = 0) -> None:
        self.scripts = scripts
        per_script = [
            sum(1 for op in ops if op[0] == "barrier")
            for ops in scripts.values()
        ]
        self.total_barriers = max([barriers] + per_script) if per_script \
            else barriers

    def setup(self, machine: Machine) -> None:  # noqa: D102 - no shared data
        pass

    def thread(self, machine: Machine, node_id: int) -> Iterator[Op]:
        used = 0
        for op in self.scripts.get(node_id, []):
            if op[0] == "barrier":
                used += 1
            yield op
        for _ in range(self.total_barriers - used):
            yield ("barrier",)


def tiny_machine(n_nodes: int = 4, protocol: str = "DirnH2SNB",
                 **param_overrides) -> Machine:
    """A small machine with fast defaults for unit tests."""
    params = MachineParams(n_nodes=n_nodes, **param_overrides)
    return Machine(params, protocol=protocol)


def run_script(machine: Machine, scripts: Dict[int, List[Op]],
               barriers: int = 0):
    """Run a scripted workload to completion; returns RunStats."""
    return machine.run(ScriptWorkload(scripts, barriers=barriers))


def data_block(machine: Machine, home: int) -> int:
    """Allocate one shared block on ``home``; returns its address."""
    return machine.heap.alloc_block(home)


def check_coherence(machine: Machine) -> List[str]:
    """Delegate to the library's state-level verifier."""
    from repro.analysis.verify import coherence_violations

    return coherence_violations(machine)


class VersionedWorkload(Workload):
    """Random reads/writes with value-level coherence checking.

    Each block has a Python-side "memory version".  A writer bumps the
    version at its write; a reader remembers the version it must at
    least observe... Since the simulator does not move data, we instead
    assert a protocol-level property that implies value coherence: at
    every read completion, the reader holds a readable copy, and at
    every write completion the writer holds the only writable copy.
    That assertion is built into the cache controller's state machine,
    so this workload simply generates adversarial traffic.
    """

    name = "versioned"

    def __init__(self, ops_per_node: int, blocks: int, seed: int,
                 write_ratio: float = 0.3, barrier_every: int = 0) -> None:
        self.ops_per_node = ops_per_node
        self.n_blocks = blocks
        self.seed = seed
        self.write_ratio = write_ratio
        self.barrier_every = barrier_every
        self.addrs: List[int] = []

    def setup(self, machine: Machine) -> None:
        from repro.workloads.base import det_rand

        n = machine.params.n_nodes
        self.addrs = [
            machine.heap.alloc_block(det_rand(self.seed, 7, i) % n)
            for i in range(self.n_blocks)
        ]

    def thread(self, machine: Machine, node_id: int) -> Iterator[Op]:
        from repro.workloads.base import det_rand

        pending_barriers = 0
        for i in range(self.ops_per_node):
            r = det_rand(self.seed, node_id, i)
            addr = self.addrs[r % self.n_blocks]
            is_write = (r >> 32) % 1000 < self.write_ratio * 1000
            yield ("write", addr) if is_write else ("read", addr)
            yield ("compute", (r >> 48) % 20)
            if self.barrier_every and (i + 1) % self.barrier_every == 0:
                pending_barriers += 1
                yield ("barrier",)
        total = (self.ops_per_node // self.barrier_every
                 if self.barrier_every else 0)
        for _ in range(total - pending_barriers):
            yield ("barrier",)
