"""The ``repro check --json`` document is a versioned contract.

``repro-check/1`` pins: top-level keys, the passes list, finding shape
(trace only when present), and deterministic serialization (sorted
keys, two-space indent, trailing newline).  The golden file is the
contract; if an intentional schema change breaks it, bump ``SCHEMA``
and regenerate.
"""

from __future__ import annotations

import json
import os

from repro.verify.report import SCHEMA, Finding, Report

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "check_report_golden.json")


def _golden_report() -> Report:
    report = Report()
    report.passes.extend(
        ["modelcheck", "lint", "transval", "shardsafe", "taint"])
    report.findings.append(Finding(
        "modelcheck", "safety", "hardware row 5 (rreq/reply_busy)",
        "two writable copies reachable",
        trace=("n0 rreq b0", "n1 wreq b0")))
    report.findings.append(Finding(
        "taint", "RND10", "src/repro/example.py:12",
        "for loop iterates an unordered set-derived value"))
    report.stats["modelcheck.states_total"] = 241056
    report.stats["lint.files"] = 87
    report.stats["shardsafe.inferred_unsafe"] = ["evolve"]
    return report


def test_dump_matches_golden_byte_for_byte():
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        golden = fh.read()
    assert _golden_report().dump_json() == golden


def test_golden_carries_the_schema_tag():
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema"] == SCHEMA == "repro-check/1"
    assert set(doc) == {"schema", "clean", "exit_code", "passes",
                        "findings", "stats"}


def test_trace_is_omitted_when_empty():
    doc = _golden_report().to_json()
    findings = doc["findings"]
    assert "trace" in findings[0]
    assert "trace" not in findings[1]


def test_extend_merges_passes_without_duplicates():
    a = Report(passes=["modelcheck", "lint"])
    b = Report(passes=["lint", "taint"])
    a.extend(b)
    assert a.passes == ["modelcheck", "lint", "taint"]


def test_live_document_round_trips_with_the_same_shape():
    """A real (cheap) pass produces a document with exactly the
    golden's top-level shape and a clean exit."""
    from repro.verify.flow.transval import run_transval

    doc = json.loads(run_transval().dump_json())
    assert doc["schema"] == "repro-check/1"
    assert set(doc) == {"schema", "clean", "exit_code", "passes",
                        "findings", "stats"}
    assert doc["clean"] is True
    assert doc["exit_code"] == 0
    assert doc["passes"] == ["transval"]
