"""Deeper synchronisation coverage: multiple locks, remote lock homes,
FIFO fairness across nodes, barrier scale, and primitive composition."""

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.base import Workload

from tests.helpers import ScriptWorkload


class TwoLocks(Workload):
    """Two independent critical sections; disjoint node groups."""

    name = "two-locks"

    def setup(self, machine):
        self.lock_a = machine.create_lock(home=0)
        self.lock_b = machine.create_lock(home=3)
        self.entries = {self.lock_a: [], self.lock_b: []}

    def thread(self, machine, node_id):
        lock = self.lock_a if node_id % 2 == 0 else self.lock_b
        for _ in range(3):
            yield ("lock", lock)
            self.entries[lock].append((node_id, machine.sim.now))
            yield ("compute", 30)
            yield ("unlock", lock)
            yield ("compute", 10)


class TestLocks:
    def test_independent_locks_do_not_interfere(self):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
        w = TwoLocks()
        m.run(w)
        a = m.locks.locks[w.lock_a]
        b = m.locks.locks[w.lock_b]
        assert a.acquisitions == 8 * 3
        assert b.acquisitions == 8 * 3
        assert a.holder is None and b.holder is None

    def test_lock_homed_on_remote_node(self):
        m = Machine(MachineParams(n_nodes=9), protocol="DirnH2SNB")
        lock = m.create_lock(home=5)

        class Grab(Workload):
            """Every node acquires one remote-homed lock once."""

            name = "grab"

            def setup(self, machine):
                pass

            def thread(self, machine, node_id):
                yield ("lock", lock)
                yield ("compute", 10)
                yield ("unlock", lock)

        m.run(Grab())
        state = m.locks.locks[lock]
        assert state.acquisitions == 9
        # The home's processor paid for the handlers.
        assert m.nodes[5].stats.handler_cycles > 0

    def test_fifo_order_matches_request_arrival(self):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
        lock = m.create_lock(home=0)
        # Stagger the requests so arrival order is unambiguous.
        scripts = {node: [("compute", 100 * node), ("lock", lock),
                          ("compute", 500), ("unlock", lock)]
                   for node in range(1, 8)}
        m.run(ScriptWorkload(scripts))
        state = m.locks.locks[lock]
        granted_order = [node for node, _t in state.history]
        assert granted_order == sorted(granted_order)

    def test_uncontended_lock_is_cheap(self):
        m = Machine(MachineParams(n_nodes=4), protocol="DirnH2SNB")
        lock = m.create_lock(home=0)
        stats = m.run(ScriptWorkload(
            {1: [("lock", lock), ("compute", 10), ("unlock", lock)]},
        ))
        # One round trip plus handler time: well under a millisecond of
        # simulated time.
        assert stats.run_cycles < 500


class TestBarrierScale:
    def test_barriers_at_256_nodes(self):
        m = Machine(MachineParams(n_nodes=256), protocol="DirnH5SNB")
        m.run(ScriptWorkload({}, barriers=3))
        assert m.barrier.barriers_completed == 3

    def test_barrier_latency_grows_sublinearly(self):
        def one_barrier(n):
            m = Machine(MachineParams(n_nodes=n), protocol="DirnHNBS-")
            stats = m.run(ScriptWorkload({}, barriers=1))
            return stats.run_cycles

        t16, t256 = one_barrier(16), one_barrier(256)
        # A combining tree costs O(log n), not O(n).
        assert t256 < t16 * 4


class ComposedPrimitives(Workload):
    """Locks, reductions and barriers in one program."""

    name = "composed"

    def setup(self, machine):
        self.lock = machine.create_lock(home=0)
        self.red = machine.create_reduction(lambda a, b: a + b)
        self.counter = 0
        self.sums = set()

    def thread(self, machine, node_id):
        yield ("lock", self.lock)
        self.counter += 1
        yield ("compute", 20)
        yield ("unlock", self.lock)
        yield ("barrier",)
        yield ("reduce", self.red, node_id)
        self.sums.add(machine.reduction_result(self.red))


class TestComposition:
    def test_primitives_compose(self):
        m = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB")
        w = ComposedPrimitives()
        m.run(w)
        assert w.counter == 16
        assert w.sums == {sum(range(16))}
