"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_lists_protocols_and_apps(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "DirnH5SNB" in out
        assert "full map" in out
        assert "water" in out


class TestRun:
    def test_run_small_app(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16")
        assert code == 0
        assert "AQ on 16 nodes" in out
        assert "speedup" in out

    def test_run_options(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                            "--no-victim-cache", "--perfect-ifetch",
                            "--software", "optimized",
                            "--invalidation-mode", "dynamic")
        assert code == 0

    def test_bad_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])

    def test_run_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--nodes", "16",
                            "--trace-out", str(trace),
                            "--metrics-out", str(metrics))
        assert code == 0
        trace_doc = json.loads(trace.read_text())
        assert trace_doc["traceEvents"]
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["schema"] == "repro-metrics/1"
        assert metrics_doc["config"]["app"] == "aq"
        assert metrics_doc["run"]["n_nodes"] == 16
        assert metrics_doc["timeseries"]["rows"]

    def test_metrics_are_byte_identical_across_runs(self, capsys,
                                                    tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                    "--metrics-out", str(path))
        assert a.read_bytes() == b.read_bytes()


class TestProfile:
    def test_profile_prints_timeseries_and_percentiles(self, capsys):
        code, out = run_cli(capsys, "profile", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16",
                            "--sample-every", "5000")
        assert code == 0
        assert "interval time-series" in out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "stall latency" in out

    def test_profile_is_deterministic(self, capsys):
        args = ("profile", "--app", "aq", "--nodes", "16",
                "--sample-every", "5000")
        _code, first = run_cli(capsys, *args)
        _code, second = run_cli(capsys, *args)
        assert first == second


class TestWorker:
    def test_worker_table(self, capsys):
        code, out = run_cli(capsys, "worker", "--size", "4",
                            "--nodes", "16", "--iterations", "2",
                            "--protocols", "DirnH5SNB", "DirnHNBS-")
        assert code == 0
        assert "WORKER" in out
        assert "DirnH5SNB" in out
        assert "vs full map" in out

    def test_worker_is_deterministic(self, capsys):
        _code, first = run_cli(capsys, "worker", "--size", "4",
                               "--nodes", "16", "--iterations", "2",
                               "--protocols", "DirnH5SNB")
        _code, second = run_cli(capsys, "worker", "--size", "4",
                                "--nodes", "16", "--iterations", "2",
                                "--protocols", "DirnH5SNB")
        assert first == second


class TestCheckInvariants:
    def test_run_reports_zero_violations(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16",
                            "--check-invariants")
        assert code == 0
        assert "invariants" in out
        assert "0 violations" in out

    def test_checking_does_not_change_the_numbers(self, capsys):
        args = ("run", "--app", "aq", "--nodes", "16")
        _code, plain = run_cli(capsys, *args)
        _code, checked = run_cli(capsys, *args, "--check-invariants")
        assert plain == checked[:len(plain)]

    def test_experiments_accepts_flag(self, capsys, tmp_path):
        out_md = tmp_path / "EXPERIMENTS.md"
        code, _out = run_cli(capsys, "experiments", "--quick",
                             "--check-invariants", "--no-cache",
                             "--out", str(out_md))
        assert code == 0
        assert out_md.exists()


class TestCachePrune:
    def _populate(self, cache_dir):
        from repro.exec import ResultCache
        from repro.exec.jobs import execute_job, make_job
        from repro.workloads.aq import AdaptiveQuadrature

        cache = ResultCache(str(cache_dir))
        job = make_job(AdaptiveQuadrature, protocol="DirnH2SNB",
                       n_nodes=16)
        return cache.put(job, execute_job(job))

    def test_prune_empty_cache(self, capsys, tmp_path):
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path / "none"))
        assert code == 0
        assert "deleted 0" in out

    def test_prune_keeps_current_entries(self, capsys, tmp_path):
        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "deleted 0" in out
        import os
        assert os.path.exists(path)

    def test_max_age_dry_run_counts_without_deleting(self, capsys,
                                                     tmp_path):
        import os

        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "0s", "--dry-run")
        assert code == 0
        assert "would delete 1" in out
        assert os.path.exists(path)

    def test_max_age_deletes_old_entries(self, capsys, tmp_path):
        import os

        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "0")
        assert code == 0
        assert "deleted 1" in out
        assert not os.path.exists(path)

    def test_max_age_units(self, capsys, tmp_path):
        self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "7d")
        assert code == 0
        assert "deleted 0" in out

    def test_bad_max_age_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--max-age", "soon"])


class TestSweepAndCost:
    def test_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "--app", "aq",
                            "--nodes", "16", "--protocols",
                            "DirnH2SNB", "DirnHNBS-")
        assert code == 0
        assert "AQ on 16 nodes" in out

    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--nodes", "16")
        assert code == 0
        assert "Cost vs performance" in out
        assert "Directory cost scaling" in out
