"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_lists_protocols_and_apps(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "DirnH5SNB" in out
        assert "full map" in out
        assert "water" in out


class TestRun:
    def test_run_small_app(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16")
        assert code == 0
        assert "AQ on 16 nodes" in out
        assert "speedup" in out

    def test_run_options(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                            "--no-victim-cache", "--perfect-ifetch",
                            "--software", "optimized",
                            "--invalidation-mode", "dynamic")
        assert code == 0

    def test_bad_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])

    def test_run_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--nodes", "16",
                            "--trace-out", str(trace),
                            "--metrics-out", str(metrics))
        assert code == 0
        trace_doc = json.loads(trace.read_text())
        assert trace_doc["traceEvents"]
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["schema"] == "repro-metrics/1"
        assert metrics_doc["config"]["app"] == "aq"
        assert metrics_doc["run"]["n_nodes"] == 16
        assert metrics_doc["timeseries"]["rows"]

    def test_metrics_are_byte_identical_across_runs(self, capsys,
                                                    tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                    "--metrics-out", str(path))
        assert a.read_bytes() == b.read_bytes()


class TestProfile:
    def test_profile_prints_timeseries_and_percentiles(self, capsys):
        code, out = run_cli(capsys, "profile", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16",
                            "--sample-every", "5000")
        assert code == 0
        assert "interval time-series" in out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "stall latency" in out

    def test_profile_is_deterministic(self, capsys):
        args = ("profile", "--app", "aq", "--nodes", "16",
                "--sample-every", "5000")
        _code, first = run_cli(capsys, *args)
        _code, second = run_cli(capsys, *args)
        assert first == second


class TestWorker:
    def test_worker_table(self, capsys):
        code, out = run_cli(capsys, "worker", "--size", "4",
                            "--nodes", "16", "--iterations", "2",
                            "--protocols", "DirnH5SNB", "DirnHNBS-")
        assert code == 0
        assert "WORKER" in out
        assert "DirnH5SNB" in out
        assert "vs full map" in out

    def test_worker_is_deterministic(self, capsys):
        _code, first = run_cli(capsys, "worker", "--size", "4",
                               "--nodes", "16", "--iterations", "2",
                               "--protocols", "DirnH5SNB")
        _code, second = run_cli(capsys, "worker", "--size", "4",
                                "--nodes", "16", "--iterations", "2",
                                "--protocols", "DirnH5SNB")
        assert first == second


class TestCheckInvariants:
    def test_run_reports_zero_violations(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16",
                            "--check-invariants")
        assert code == 0
        assert "invariants" in out
        assert "0 violations" in out

    def test_checking_does_not_change_the_numbers(self, capsys):
        args = ("run", "--app", "aq", "--nodes", "16")
        _code, plain = run_cli(capsys, *args)
        _code, checked = run_cli(capsys, *args, "--check-invariants")
        assert plain == checked[:len(plain)]

    def test_experiments_accepts_flag(self, capsys, tmp_path):
        out_md = tmp_path / "EXPERIMENTS.md"
        code, _out = run_cli(capsys, "experiments", "--quick",
                             "--check-invariants", "--no-cache",
                             "--out", str(out_md))
        assert code == 0
        assert out_md.exists()


class TestCachePrune:
    def _populate(self, cache_dir):
        from repro.exec import ResultCache
        from repro.exec.jobs import execute_job, make_job
        from repro.workloads.aq import AdaptiveQuadrature

        cache = ResultCache(str(cache_dir))
        job = make_job(AdaptiveQuadrature, protocol="DirnH2SNB",
                       n_nodes=16)
        return cache.put(job, execute_job(job))

    def test_prune_empty_cache(self, capsys, tmp_path):
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path / "none"))
        assert code == 0
        assert "deleted 0" in out

    def test_prune_keeps_current_entries(self, capsys, tmp_path):
        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "deleted 0" in out
        import os
        assert os.path.exists(path)

    def test_max_age_dry_run_counts_without_deleting(self, capsys,
                                                     tmp_path):
        import os

        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "0s", "--dry-run")
        assert code == 0
        assert "would delete 1" in out
        assert os.path.exists(path)

    def test_max_age_deletes_old_entries(self, capsys, tmp_path):
        import os

        path = self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "0")
        assert code == 0
        assert "deleted 1" in out
        assert not os.path.exists(path)

    def test_max_age_units(self, capsys, tmp_path):
        self._populate(tmp_path)
        code, out = run_cli(capsys, "cache", "prune",
                            "--cache-dir", str(tmp_path),
                            "--max-age", "7d")
        assert code == 0
        assert "deleted 0" in out

    def test_bad_max_age_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--max-age", "soon"])


class TestSweepAndCost:
    def test_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "--app", "aq",
                            "--nodes", "16", "--protocols",
                            "DirnH2SNB", "DirnHNBS-")
        assert code == 0
        assert "AQ on 16 nodes" in out

    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--nodes", "16")
        assert code == 0
        assert "Cost vs performance" in out
        assert "Directory cost scaling" in out


class TestAnalyze:
    ARGS = ("analyze", "--nodes", "16", "--size", "4",
            "--iterations", "1", "--protocol", "DirnH2SNB")

    def test_stdout_artifact(self, capsys):
        code, out = run_cli(capsys, *self.ARGS)
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "repro-attribution/1"
        assert doc["residual"] == 0
        assert sum(doc["buckets"].values()) == doc["stall_cycles"]
        assert doc["config"]["app"] == "worker"
        assert doc["config"]["nodes"] == 16

    def test_file_artifact_and_summary(self, capsys, tmp_path):
        path = tmp_path / "attr.json"
        code, out = run_cli(capsys, *self.ARGS, "--out", str(path))
        assert code == 0
        assert "stall cycles" in out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-attribution/1"

    def test_artifact_is_byte_identical_across_runs(self, capsys,
                                                    tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli(capsys, *self.ARGS, "--out", str(a))
        run_cli(capsys, *self.ARGS, "--out", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_show_txn_prints_a_trace(self, capsys):
        code = main(list(self.ARGS) + ["--show-txn", "1",
                                       "--out", "-"])
        captured = capsys.readouterr()
        assert code == 0
        assert "txn 1:" in captured.err

    def test_application_workloads_work_too(self, capsys):
        code, out = run_cli(capsys, "analyze", "--app", "aq",
                            "--nodes", "16", "--protocol", "DirnH2SNB")
        assert code == 0
        doc = json.loads(out)
        assert doc["residual"] == 0
        assert doc["config"]["app"] == "aq"


class TestDiff:
    def _artifact(self, capsys, tmp_path, name, protocol="DirnH2SNB"):
        path = tmp_path / name
        code, _out = run_cli(capsys, "analyze", "--nodes", "16",
                             "--size", "4", "--iterations", "1",
                             "--protocol", protocol,
                             "--out", str(path))
        assert code == 0
        return path

    def test_identical_artifacts_are_ok(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        b = self._artifact(capsys, tmp_path, "b.json")
        code, out = run_cli(capsys, "diff", str(a), str(b))
        assert code == 0
        assert "OK" in out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        worse_doc = json.loads(a.read_text())
        worse_doc["buckets"]["retry"] += 50_000
        worse_doc["stall_cycles"] += 50_000
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(worse_doc))
        code, out = run_cli(capsys, "diff", str(a), str(worse))
        assert code == 1
        assert "REGRESSIONS: retry" in out

    def test_bucket_threshold_override(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        worse_doc = json.loads(a.read_text())
        worse_doc["buckets"]["retry"] += 50_000
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(worse_doc))
        code, _out = run_cli(capsys, "diff", str(a), str(worse),
                             "--bucket-threshold", "retry=1e9")
        assert code == 0

    def test_baseline_mode_needs_one_artifact(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        b = self._artifact(capsys, tmp_path, "b.json")
        code = main(["diff", str(a), str(b),
                     "--baseline", str(a)])
        assert code == 2

    def test_baseline_mode(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        b = self._artifact(capsys, tmp_path, "b.json")
        code, out = run_cli(capsys, "diff", str(b),
                            "--baseline", str(a))
        assert code == 0
        assert "OK" in out

    def test_missing_file_is_a_usage_error(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        code = main(["diff", str(a), str(tmp_path / "nope.json")])
        assert code == 2

    def test_wrong_schema_is_a_usage_error(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        junk = tmp_path / "junk.json"
        junk.write_text('{"schema": "repro-metrics/1"}')
        code = main(["diff", str(a), str(junk)])
        assert code == 2

    def test_json_output(self, capsys, tmp_path):
        a = self._artifact(capsys, tmp_path, "a.json")
        b = self._artifact(capsys, tmp_path, "b.json")
        out_doc = tmp_path / "diff.json"
        code, _out = run_cli(capsys, "diff", str(a), str(b),
                             "--json", str(out_doc))
        assert code == 0
        doc = json.loads(out_doc.read_text())
        assert doc["schema"] == "repro-attribution-diff/1"
        assert doc["ok"]


class TestRunProgressFlag:
    def test_progress_does_not_change_output(self, capsys):
        code_plain, out_plain = run_cli(capsys, "run", "--app", "aq",
                                        "--nodes", "16")
        code_live, out_live = run_cli(capsys, "run", "--app", "aq",
                                      "--nodes", "16", "--progress")
        assert code_plain == code_live == 0
        assert out_plain == out_live  # progress goes to stderr only


class TestStatus:
    def _write_log(self, tmp_path):
        from repro.obs.fleet import FLEETLOG_SCHEMA, FleetLogWriter, event

        path = tmp_path / "fleet.jsonl"
        writer = FleetLogWriter(str(path))
        writer.write(event("sweep_started", jobs=2, seq=0))
        writer.write(event("plan_enqueued", planned=2, unique=2,
                           pending=1, seq=1))
        writer.write(event("cache_hit", key="a", seq=2))
        writer.write(event("job_started", key="b", pid=7, seq=3))
        writer.write(event("job_finished", key="b", pid=7, wall_s=0.5,
                           run_cycles=1000, sim_cycles_per_sec=2000.0,
                           seq=4))
        writer.write(event("sweep_finished", wall_s=0.5,
                           jobs_executed=1, seq=5))
        writer.close()
        return path

    def test_summarizes_log(self, capsys, tmp_path):
        log = self._write_log(tmp_path)
        code, out = run_cli(capsys, "status", str(log))
        assert code == 0
        assert "jobs: 1 completed" in out
        assert "cache: 1 hits" in out
        assert "repro-fleetlog/1" in out

    def test_json_output(self, capsys, tmp_path):
        log = self._write_log(tmp_path)
        code, out = run_cli(capsys, "status", str(log), "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["completed"] == 1
        assert doc["cache"]["hits"] == 1

    def test_prom_output(self, capsys, tmp_path):
        log = self._write_log(tmp_path)
        code, out = run_cli(capsys, "status", str(log), "--prom")
        assert code == 0
        assert "repro_fleet_jobs_completed_total 1" in out

    def test_bad_log_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code, out = run_cli(capsys, "status", str(bad))
        assert code == 2

    def test_missing_log_exits_2(self, capsys, tmp_path):
        code, _out = run_cli(capsys, "status",
                             str(tmp_path / "missing.jsonl"))
        assert code == 2


class TestExperimentsFleetTelemetry:
    def test_fleet_log_and_prom_snapshot(self, capsys, tmp_path):
        from repro.obs.fleet import read_fleet_log

        out_md = tmp_path / "EXPERIMENTS.md"
        log = tmp_path / "sweep.jsonl"
        prom = tmp_path / "sweep.prom"
        code, out = run_cli(capsys, "experiments", "--quick",
                            "--no-cache",
                            "--fleet-log", str(log),
                            "--prom-out", str(prom),
                            "--out", str(out_md))
        assert code == 0
        events = read_fleet_log(str(log))  # validates every event
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "sweep_finished"
        assert "section_started" in kinds
        assert kinds.count("job_started") == kinds.count("job_finished")
        assert "repro_fleet_jobs_completed_total" in prom.read_text()
        # end-of-run summary reports cache counters (satellite: cache
        # stats surface in the summary line)
        assert "cache off" in out


class TestExperimentsAttribution:
    def test_flag_persists_artifacts_through_the_cache(self, capsys,
                                                       tmp_path):
        out_md = tmp_path / "EXPERIMENTS.md"
        cache_dir = tmp_path / "cache"
        code, _out = run_cli(capsys, "experiments", "--quick",
                             "--attribution",
                             "--cache-dir", str(cache_dir),
                             "--out", str(out_md))
        assert code == 0
        entries = list(cache_dir.rglob("*.json"))
        assert entries
        for entry in entries:
            doc = json.loads(entry.read_text())
            stats = doc.get("stats", doc)
            assert "attribution" in stats


class TestStatusFollow:
    def _finished_log(self, tmp_path):
        from repro.obs.fleet import FleetLogWriter, event

        path = tmp_path / "sweep.jsonl"
        writer = FleetLogWriter(str(path))
        writer.write(event("sweep_started", jobs=1, seq=1))
        writer.write(event("job_queued", key="k", seq=2))
        writer.write(event("job_started", key="k", pid=1, seq=3))
        writer.write(event("job_finished", key="k", pid=1, wall_s=0.5,
                           run_cycles=1000, sim_cycles_per_sec=2000.0,
                           seq=4))
        writer.write(event("sweep_finished", wall_s=0.5,
                           jobs_executed=1, seq=5))
        writer.close()
        return path

    def test_follow_exits_when_sweep_finishes(self, capsys, tmp_path):
        log = self._finished_log(tmp_path)
        code, out = run_cli(capsys, "status", str(log), "--follow",
                            "--interval", "0.01")
        assert code == 0
        assert "jobs: 1 completed" in out

    def test_follow_tolerates_a_torn_tail(self, tmp_path):
        from repro.cli import _follow_fleet_log
        from repro.obs.fleet import FleetLogWriter, event

        path = tmp_path / "sweep.jsonl"
        writer = FleetLogWriter(str(path))
        writer.write(event("sweep_started", jobs=1, seq=1))
        writer.close()
        with open(path, "a") as fh:
            fh.write('{"event":"job_st')  # writer mid-append
        out = (tmp_path / "lines.txt").open("w")
        code = _follow_fleet_log(str(path), interval=0.01,
                                 stream=out, max_polls=2)
        out.close()
        assert code == 0
        assert "0/0 jobs" in (tmp_path / "lines.txt").read_text()

    def test_follow_missing_file_exits_2(self, capsys, tmp_path):
        code, _out = run_cli(capsys, "status",
                             str(tmp_path / "nope.jsonl"), "--follow")
        assert code == 2
