"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_lists_protocols_and_apps(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "DirnH5SNB" in out
        assert "full map" in out
        assert "water" in out


class TestRun:
    def test_run_small_app(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16")
        assert code == 0
        assert "AQ on 16 nodes" in out
        assert "speedup" in out

    def test_run_options(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                            "--no-victim-cache", "--perfect-ifetch",
                            "--software", "optimized",
                            "--invalidation-mode", "dynamic")
        assert code == 0

    def test_bad_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])


class TestWorker:
    def test_worker_table(self, capsys):
        code, out = run_cli(capsys, "worker", "--size", "4",
                            "--nodes", "16", "--iterations", "2",
                            "--protocols", "DirnH5SNB", "DirnHNBS-")
        assert code == 0
        assert "WORKER" in out
        assert "DirnH5SNB" in out
        assert "vs full map" in out

    def test_worker_is_deterministic(self, capsys):
        _code, first = run_cli(capsys, "worker", "--size", "4",
                               "--nodes", "16", "--iterations", "2",
                               "--protocols", "DirnH5SNB")
        _code, second = run_cli(capsys, "worker", "--size", "4",
                                "--nodes", "16", "--iterations", "2",
                                "--protocols", "DirnH5SNB")
        assert first == second


class TestSweepAndCost:
    def test_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "--app", "aq",
                            "--nodes", "16", "--protocols",
                            "DirnH2SNB", "DirnHNBS-")
        assert code == 0
        assert "AQ on 16 nodes" in out

    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--nodes", "16")
        assert code == 0
        assert "Cost vs performance" in out
        assert "Directory cost scaling" in out
