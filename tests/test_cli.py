"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_lists_protocols_and_apps(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "DirnH5SNB" in out
        assert "full map" in out
        assert "water" in out


class TestRun:
    def test_run_small_app(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16")
        assert code == 0
        assert "AQ on 16 nodes" in out
        assert "speedup" in out

    def test_run_options(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                            "--no-victim-cache", "--perfect-ifetch",
                            "--software", "optimized",
                            "--invalidation-mode", "dynamic")
        assert code == 0

    def test_bad_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])

    def test_run_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code, out = run_cli(capsys, "run", "--app", "aq",
                            "--nodes", "16",
                            "--trace-out", str(trace),
                            "--metrics-out", str(metrics))
        assert code == 0
        trace_doc = json.loads(trace.read_text())
        assert trace_doc["traceEvents"]
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["schema"] == "repro-metrics/1"
        assert metrics_doc["config"]["app"] == "aq"
        assert metrics_doc["run"]["n_nodes"] == 16
        assert metrics_doc["timeseries"]["rows"]

    def test_metrics_are_byte_identical_across_runs(self, capsys,
                                                    tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            run_cli(capsys, "run", "--app", "aq", "--nodes", "16",
                    "--metrics-out", str(path))
        assert a.read_bytes() == b.read_bytes()


class TestProfile:
    def test_profile_prints_timeseries_and_percentiles(self, capsys):
        code, out = run_cli(capsys, "profile", "--app", "aq",
                            "--protocol", "DirnH2SNB", "--nodes", "16",
                            "--sample-every", "5000")
        assert code == 0
        assert "interval time-series" in out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "stall latency" in out

    def test_profile_is_deterministic(self, capsys):
        args = ("profile", "--app", "aq", "--nodes", "16",
                "--sample-every", "5000")
        _code, first = run_cli(capsys, *args)
        _code, second = run_cli(capsys, *args)
        assert first == second


class TestWorker:
    def test_worker_table(self, capsys):
        code, out = run_cli(capsys, "worker", "--size", "4",
                            "--nodes", "16", "--iterations", "2",
                            "--protocols", "DirnH5SNB", "DirnHNBS-")
        assert code == 0
        assert "WORKER" in out
        assert "DirnH5SNB" in out
        assert "vs full map" in out

    def test_worker_is_deterministic(self, capsys):
        _code, first = run_cli(capsys, "worker", "--size", "4",
                               "--nodes", "16", "--iterations", "2",
                               "--protocols", "DirnH5SNB")
        _code, second = run_cli(capsys, "worker", "--size", "4",
                                "--nodes", "16", "--iterations", "2",
                                "--protocols", "DirnH5SNB")
        assert first == second


class TestSweepAndCost:
    def test_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "--app", "aq",
                            "--nodes", "16", "--protocols",
                            "DirnH2SNB", "DirnHNBS-")
        assert code == 0
        assert "AQ on 16 nodes" in out

    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--nodes", "16")
        assert code == 0
        assert "Cost vs performance" in out
        assert "Directory cost scaling" in out
