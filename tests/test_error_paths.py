"""Error paths: protocol inconsistencies must raise loudly, never pass
silently — the simulator is deterministic, so every failure replays."""

import pytest

from repro.common.errors import ProtocolStateError
from repro.common.types import AccessType, CacheState
from repro.core.messages import ProtoPayload
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.network.fabric import Message


def machine(n=4, protocol="DirnH2SNB"):
    return Machine(MachineParams(n_nodes=n), protocol=protocol)


def fake(kind, src, dst, block):
    return Message(src=src, dst=dst, kind=kind, size_flits=3,
                   payload=ProtoPayload(block=block))


class TestHomeErrorPaths:
    def test_stray_ack_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("ack", 1, 0, 12345))

    def test_stray_fetch_data_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("fetch_data", 1, 0, 12345))

    def test_untracked_writeback_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("evict_wb", 1, 0, 12345))

    def test_unknown_kind_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("warp", 1, 0, 12345))

    def test_h0_stray_ack_raises(self):
        m = machine(protocol="DirnH0SNB,ACK")
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("ack", 1, 0, 12345))

    def test_h0_unknown_kind_raises(self):
        m = machine(protocol="DirnH0SNB,ACK")
        with pytest.raises(ProtocolStateError):
            m.nodes[0].home.handle(fake("warp", 1, 0, 12345))


class TestCacheErrorPaths:
    def test_unknown_kind_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[1].cache_ctrl.handle(fake("warp", 0, 1, 12345))

    def test_inv_on_dirty_line_raises(self):
        m = machine()
        ctrl = m.nodes[1].cache_ctrl
        ctrl.cache.fill(12345, CacheState.READ_WRITE)
        with pytest.raises(ProtocolStateError):
            ctrl.handle(fake("inv", 0, 1, 12345))

    def test_fetch_of_read_only_line_raises(self):
        m = machine()
        ctrl = m.nodes[1].cache_ctrl
        ctrl.cache.fill(12345, CacheState.READ_ONLY)
        with pytest.raises(ProtocolStateError):
            ctrl.handle(fake("fetch_rd", 0, 1, 12345))

    def test_double_outstanding_miss_raises(self):
        m = machine()
        ctrl = m.nodes[1].cache_ctrl
        ctrl.start_miss(AccessType.READ, 12345, lambda: None)
        with pytest.raises(ProtocolStateError):
            ctrl.start_miss(AccessType.READ, 777, lambda: None)

    def test_overlapping_ifetch_raises(self):
        m = machine()
        ctrl = m.nodes[1].cache_ctrl
        ctrl.start_ifetch_miss(1, lambda: None)
        with pytest.raises(ProtocolStateError):
            ctrl.start_ifetch_miss(2, lambda: None)


class TestStaleMessagesAreTolerated:
    """The flip side: messages that legal races CAN produce must be
    dropped gracefully, not raised on."""

    def test_stale_busy_ignored(self):
        m = machine()
        m.nodes[1].cache_ctrl.handle(fake("busy", 0, 1, 12345))

    def test_stale_data_grant_ignored(self):
        m = machine()
        m.nodes[1].cache_ctrl.handle(fake("rdata", 0, 1, 12345))
        m.nodes[1].cache_ctrl.handle(fake("wdata", 0, 1, 12345))

    def test_inv_of_absent_line_acknowledged(self):
        m = machine()
        m.nodes[1].cache_ctrl.handle(fake("inv", 0, 1, 12345))
        assert m.nodes[1].stats.messages_sent["ack"] == 1

    def test_fetch_of_absent_line_ignored(self):
        # The write-back is in flight; the home will take it instead.
        m = machine()
        m.nodes[1].cache_ctrl.handle(fake("fetch_inv", 0, 1, 12345))
        m.nodes[1].cache_ctrl.handle(fake("fetch_rd", 0, 1, 12345))

    def test_relinquish_of_untracked_block_ignored(self):
        m = machine()
        m.nodes[0].home.handle(fake("relinq", 1, 0, 12345))


class TestNodeDispatch:
    def test_unroutable_kind_raises(self):
        m = machine()
        with pytest.raises(ProtocolStateError):
            m.nodes[0].receive(fake("gibberish", 1, 0, 5))
