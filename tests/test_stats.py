"""Tests for statistics containers and aggregation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import HandlerSample, NodeStats, RunStats


def make_stats(samples=(), per_node=None, run_cycles=1000, seq=4000):
    nodes = per_node if per_node is not None else [NodeStats(node=0)]
    return RunStats(
        run_cycles=run_cycles,
        n_nodes=len(nodes),
        per_node=nodes,
        handler_samples=list(samples),
        sequential_cycles=seq,
    )


def sample(kind="read", impl="flexible", latency=100, node=0, pointers=5):
    return HandlerSample(kind=kind, implementation=impl, node=node,
                         pointers=pointers, latency=latency,
                         breakdown={"x": latency})


class TestNodeStats:
    def test_accesses_and_hit_rate(self):
        ns = NodeStats(node=0, loads=6, stores=3, ifetches=1,
                       cache_hits=8, cache_misses=2)
        assert ns.accesses == 10
        assert ns.hit_rate == pytest.approx(0.8)

    def test_hit_rate_with_no_accesses(self):
        assert NodeStats(node=0).hit_rate == 1.0


class TestRunStats:
    def test_total_sums_across_nodes(self):
        nodes = [NodeStats(node=0, loads=3), NodeStats(node=1, loads=4)]
        stats = make_stats(per_node=nodes)
        assert stats.total("loads") == 7

    def test_total_rejects_counter_fields(self):
        ns = NodeStats(node=0)
        ns.traps["read_overflow"] = 2
        ns.messages_sent["rreq"] = 5
        stats = make_stats(per_node=[ns])
        with pytest.raises(TypeError, match="traps_by_kind"):
            stats.total("traps")
        with pytest.raises(TypeError, match="messages_by_kind"):
            stats.total("messages_sent")

    def test_total_error_names_offending_field(self):
        stats = make_stats(per_node=[NodeStats(node=0)])
        with pytest.raises(TypeError, match="'traps'"):
            stats.total("traps")

    def test_traps_by_kind_merges(self):
        a = NodeStats(node=0)
        a.traps["read_overflow"] = 2
        b = NodeStats(node=1)
        b.traps["read_overflow"] = 3
        b.traps["ack_last"] = 1
        stats = make_stats(per_node=[a, b])
        assert stats.traps_by_kind() == {"read_overflow": 5, "ack_last": 1}
        assert stats.total_traps == 6

    def test_speedup(self):
        stats = make_stats(run_cycles=1000, seq=4000)
        assert stats.speedup == 4.0
        assert make_stats(run_cycles=0).speedup == 0.0

    def test_utilization(self):
        nodes = [NodeStats(node=0, user_cycles=500),
                 NodeStats(node=1, user_cycles=250)]
        stats = make_stats(per_node=nodes, run_cycles=1000)
        assert stats.processor_utilization == pytest.approx(0.375)

    def test_mean_handler_latency_filters(self):
        stats = make_stats(samples=[
            sample(latency=100), sample(latency=200),
            sample(kind="write", latency=999),
            sample(impl="optimized", latency=1),
        ])
        assert stats.mean_handler_latency("read", "flexible") == 150.0
        assert stats.mean_handler_latency("write", "flexible") == 999.0
        assert stats.mean_handler_latency("ack", "flexible") == 0.0

    def test_median_handler_sample(self):
        stats = make_stats(samples=[
            sample(latency=10), sample(latency=99), sample(latency=50),
        ])
        median = stats.median_handler_sample("read", "flexible")
        assert median is not None and median.latency == 50
        assert stats.median_handler_sample("ack", "flexible") is None

    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=50))
    def test_median_is_order_statistic(self, latencies):
        stats = make_stats(samples=[sample(latency=v) for v in latencies])
        median = stats.median_handler_sample("read", "flexible")
        assert median is not None
        assert median.latency == sorted(latencies)[len(latencies) // 2]

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=50))
    def test_mean_matches_direct_average(self, latencies):
        stats = make_stats(samples=[sample(latency=v) for v in latencies])
        assert stats.mean_handler_latency("read", "flexible") == \
            pytest.approx(sum(latencies) / len(latencies))

    def test_handler_latency_histogram(self):
        stats = make_stats(samples=[
            sample(latency=10), sample(latency=20), sample(latency=30),
            sample(kind="write", latency=999),
        ])
        hist = stats.handler_latency_histogram("read", "flexible")
        assert hist.count == 3
        assert hist.percentile(50) == 20
        assert hist.mean == pytest.approx(20.0)
        empty = stats.handler_latency_histogram("ack", "flexible")
        assert empty.count == 0
