"""Tests for the deterministic discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: order.append("b"))
        sim.at(5, lambda: order.append("a"))
        sim.at(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20

    def test_same_cycle_fires_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in range(8):
            sim.at(7, lambda t=tag: order.append(t))
        sim.run()
        assert order == list(range(8))

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: sim.after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_rejected_schedule_burns_no_sequence_number(self):
        """Validation precedes the tie-break counter: a past-time at()
        that raises must not shift the FIFO order of later same-cycle
        events (a caller catching and retrying would otherwise perturb
        bit-for-bit reproducibility)."""
        sim = Simulator()
        order = []
        sim.at(10, lambda: None)
        sim.run()
        seq_before = sim._owner_seq.get(sim.current_owner, 0)
        sim.at(20, lambda: order.append("a"))
        with pytest.raises(SimulationError):
            sim.at(5, lambda: order.append("never"))
        assert sim._owner_seq[sim.current_owner] == seq_before + 1
        sim.at(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]


class TestOwnerKeys:
    def test_same_cycle_orders_by_owner_then_sequence(self):
        sim = Simulator()
        order = []
        sim.at(7, lambda: order.append("b0"), owner=2)
        sim.at(7, lambda: order.append("a0"), owner=1)
        sim.at(7, lambda: order.append("b1"), owner=2)
        sim.at(7, lambda: order.append("a1"), owner=1)
        sim.run()
        assert order == ["a0", "a1", "b0", "b1"]

    def test_events_inherit_current_owner(self):
        sim = Simulator()
        owners = []

        def record():
            owners.append(sim.current_owner)
            if len(owners) == 1:
                # scheduled without an owner: inherits ours (3)
                sim.after(1, record)

        sim.at(0, record, owner=3)
        sim.run()
        assert owners == [3, 3]

    def test_post_reproduces_an_allocated_key(self):
        # Two engines, same schedule: one allocates locally, the other
        # receives the key via post(); both must order identically.
        a, b = Simulator(), Simulator()
        out_a, out_b = [], []
        seq = a.alloc_seq(5)
        a.post(4, 5, seq, lambda: out_a.append("x"))
        a.at(4, lambda: out_a.append("y"), owner=6)
        b.at(4, lambda: out_b.append("x"), owner=5)
        b.at(4, lambda: out_b.append("y"), owner=6)
        a.run()
        b.run()
        assert out_a == out_b == ["x", "y"]

    def test_post_does_not_advance_local_counter(self):
        sim = Simulator()
        sim.post(1, 9, 17, lambda: None)
        assert sim._owner_seq.get(9, 0) == 0

    def test_post_in_past_rejected(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post(5, 0, 1, lambda: None)

    def test_run_window_executes_strictly_before_limit(self):
        sim = Simulator()
        fired = []
        for t in (0, 3, 4, 9):
            sim.at(t, lambda t=t: fired.append(t))
        executed = sim.run_window(4)
        assert fired == [0, 3]
        assert executed == 2
        assert sim.pending_events == 2
        assert sim.next_event_time == 4
        executed = sim.run_window(100)
        assert fired == [0, 3, 4, 9]
        assert executed == 2
        assert sim.next_event_time is None

    def test_run_window_publishes_current_key(self):
        sim = Simulator()
        keys = []
        sim.at(2, lambda: keys.append(sim.current_key), owner=4)
        sim.run_window(10)
        assert keys == [(2, 4, 1)]

    def test_serial_run_matches_windowed_run(self):
        def build():
            sim = Simulator()
            out = []
            for i, (t, owner) in enumerate(
                    [(5, 1), (5, 0), (2, 3), (5, 1), (9, 0)]):
                sim.at(t, lambda i=i: out.append((sim.now, i)), owner=owner)
            return sim, out

        serial, out_serial = build()
        serial.run()
        windowed, out_windowed = build()
        for limit in (3, 6, 12):
            windowed.run_window(limit)
        assert out_serial == out_windowed


class TestRunControl:
    def test_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.at(5, lambda: fired.append(5))
        sim.at(50, lambda: fired.append(50))
        sim.run(until=10)
        assert fired == [5]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [5, 50]

    def test_stop(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.at(1, first)
        sim.at(2, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.after(1, reschedule)

        sim.at(0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_idle_check_called_on_drain(self):
        sim = Simulator()
        called = []
        sim.at(1, lambda: None)
        sim.run(idle_check=lambda: called.append(True))
        assert called == [True]

    def test_idle_check_not_called_when_stopped(self):
        sim = Simulator()
        called = []
        sim.at(1, sim.stop)
        sim.at(2, lambda: None)
        sim.run(idle_check=lambda: called.append(True))
        assert called == []

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1, nested)
        sim.run()
        assert len(errors) == 1


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=60))
    def test_arbitrary_schedules_are_deterministic(self, times):
        def trace(schedule):
            sim = Simulator()
            out = []
            for i, t in enumerate(schedule):
                sim.at(t, lambda i=i: out.append((sim.now, i)))
            sim.run()
            return out

        assert trace(times) == trace(times)

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=40))
    def test_time_never_decreases(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
