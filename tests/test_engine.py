"""Tests for the deterministic discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: order.append("b"))
        sim.at(5, lambda: order.append("a"))
        sim.at(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20

    def test_same_cycle_fires_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in range(8):
            sim.at(7, lambda t=tag: order.append(t))
        sim.run()
        assert order == list(range(8))

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: sim.after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_rejected_schedule_burns_no_sequence_number(self):
        """Validation precedes the tie-break counter: a past-time at()
        that raises must not shift the FIFO order of later same-cycle
        events (a caller catching and retrying would otherwise perturb
        bit-for-bit reproducibility)."""
        sim = Simulator()
        order = []
        sim.at(10, lambda: None)
        sim.run()
        seq_before = sim._seq
        sim.at(20, lambda: order.append("a"))
        with pytest.raises(SimulationError):
            sim.at(5, lambda: order.append("never"))
        assert sim._seq == seq_before + 1
        sim.at(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]


class TestRunControl:
    def test_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.at(5, lambda: fired.append(5))
        sim.at(50, lambda: fired.append(50))
        sim.run(until=10)
        assert fired == [5]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [5, 50]

    def test_stop(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.at(1, first)
        sim.at(2, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.after(1, reschedule)

        sim.at(0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_idle_check_called_on_drain(self):
        sim = Simulator()
        called = []
        sim.at(1, lambda: None)
        sim.run(idle_check=lambda: called.append(True))
        assert called == [True]

    def test_idle_check_not_called_when_stopped(self):
        sim = Simulator()
        called = []
        sim.at(1, sim.stop)
        sim.at(2, lambda: None)
        sim.run(idle_check=lambda: called.append(True))
        assert called == []

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1, nested)
        sim.run()
        assert len(errors) == 1


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=60))
    def test_arbitrary_schedules_are_deterministic(self, times):
        def trace(schedule):
            sim = Simulator()
            out = []
            for i, t in enumerate(schedule):
                sim.at(t, lambda i=i: out.append((sim.now, i)))
            sim.run()
            return out

        assert trace(times) == trace(times)

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=40))
    def test_time_never_decreases(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
