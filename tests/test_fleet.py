"""Tests for fleet telemetry (repro.obs.fleet).

The contract under test is two-sided:

- the telemetry *works*: events flow from workers (in-process and over
  the pool's manager queue), the JSONL log round-trips through the
  schema validator, the monitor's aggregates and the ``repro status``
  summary are right, and the Prometheus snapshot renders;
- the telemetry *changes nothing*: result maps and cache keys are
  byte-identical with telemetry on or off, at any worker count — the
  side-channel invariant the CI gate enforces on the full report.
"""

import json
import os

import pytest

from repro.exec import JobRunner, ResultCache, make_job
from repro.exec.jobs import execute_job, job_key
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.obs.fleet import (
    DEFAULT_ETA_HINTS,
    FLEETLOG_SCHEMA,
    FleetLogWriter,
    FleetMonitor,
    FleetTelemetry,
    ProgressPrinter,
    RunProgress,
    event,
    format_fleet_summary,
    load_eta_hints,
    prometheus_snapshot,
    read_fleet_log,
    summarize_fleet_log,
    validate_event,
)
from repro.workloads.worker import WorkerBenchmark

TINY = dict(worker_set_size=2, iterations=1)


def tiny_job(protocol="DirnH5SNB", n_nodes=4, **kwargs):
    merged = dict(TINY, **kwargs)
    return make_job(WorkerBenchmark, merged, protocol=protocol,
                    n_nodes=n_nodes)


def tiny_plan():
    return [tiny_job(),
            tiny_job(protocol="full-map"),
            tiny_job(protocol="Dir5H5SB")]


def results_doc(results):
    return json.dumps({k: v.to_json_dict() for k, v in results.items()},
                      sort_keys=True)


# ----------------------------------------------------------------------
# Event schema
# ----------------------------------------------------------------------

class TestValidateEvent:
    def test_accepts_every_emitted_shape(self):
        validate_event(event("sweep_started", jobs=2))
        validate_event(event("job_started", key="k", pid=1))
        validate_event(event("job_progress", key="k", pid=1, cycles=100))
        validate_event(event("job_finished", key="k", pid=1, wall_s=0.1,
                             run_cycles=100, sim_cycles_per_sec=1000.0))
        validate_event(event("fleet_log", schema=FLEETLOG_SCHEMA))

    def test_extra_fields_allowed(self):
        validate_event(event("job_started", key="k", pid=1,
                             workload="Worker", protocol="full-map"))

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event(event("job_telemetry", key="k"))

    def test_rejects_missing_required_field(self):
        with pytest.raises(ValueError, match="missing required field"):
            validate_event(event("job_progress", key="k", pid=1))

    def test_rejects_missing_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            validate_event({"event": "sweep_started", "jobs": 1})

    def test_rejects_bad_seq(self):
        doc = event("sweep_started", jobs=1)
        doc["seq"] = -1
        with pytest.raises(ValueError, match="seq"):
            validate_event(doc)

    def test_rejects_wrong_schema_tag(self):
        with pytest.raises(ValueError, match="schema"):
            validate_event(event("fleet_log", schema="repro-fleetlog/999"))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            validate_event(["sweep_started"])


# ----------------------------------------------------------------------
# The JSONL log
# ----------------------------------------------------------------------

class TestFleetLog:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        writer = FleetLogWriter(path)
        writer.write(event("sweep_started", jobs=2, seq=1))
        writer.write(event("job_queued", key="k", seq=2))
        writer.close()
        events = read_fleet_log(path)
        assert [e["event"] for e in events] == [
            "fleet_log", "sweep_started", "job_queued"]
        assert events[0]["schema"] == FLEETLOG_SCHEMA

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        doc = event("sweep_started", jobs=1)
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(ValueError, match="header"):
            read_fleet_log(str(path))

    def test_malformed_line_pinpointed(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        header = json.dumps(event("fleet_log", schema=FLEETLOG_SCHEMA))
        path.write_text(header + "\n{not json\n")
        with pytest.raises(ValueError, match="fleet.jsonl:2"):
            read_fleet_log(str(path))

    def test_invalid_event_pinpointed(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        header = json.dumps(event("fleet_log", schema=FLEETLOG_SCHEMA))
        bad = json.dumps(event("job_queued"))  # missing key
        path.write_text(header + "\n" + bad + "\n")
        with pytest.raises(ValueError, match="fleet.jsonl:2"):
            read_fleet_log(str(path))


# ----------------------------------------------------------------------
# Serial runner telemetry
# ----------------------------------------------------------------------

class TestSerialTelemetry:
    def test_lifecycle_events_logged(self, tmp_path):
        log = str(tmp_path / "fleet.jsonl")
        cache = ResultCache(str(tmp_path / "cache"))
        monitor = FleetMonitor(log_path=log)
        runner = JobRunner(jobs=1, cache=cache, telemetry=monitor,
                           heartbeat_every=200)
        monitor.start(jobs=runner.n_workers)
        runner.run(tiny_plan())
        monitor.finish(jobs_executed=runner.jobs_executed)

        events = read_fleet_log(log)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "fleet_log"
        assert kinds[1] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("job_started") == 3
        assert kinds.count("job_finished") == 3
        assert kinds.count("cache_miss") == 3
        assert kinds.count("cache_put") == 3
        assert "job_progress" in kinds  # heartbeat fired
        # every monitor-sequenced event is monotone (the header line
        # is written by the log writer itself and carries no seq)
        seqs = [e["seq"] for e in events[1:]]
        assert seqs == list(range(len(events) - 1))

    def test_cache_hits_and_memo_hits_stream(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        JobRunner(jobs=1, cache=cache).run(tiny_plan())  # populate

        monitor = FleetMonitor()
        runner = JobRunner(jobs=1, cache=cache, telemetry=monitor)
        runner.run(tiny_plan())  # disk hits
        runner.run(tiny_plan())  # memo hits
        assert monitor.cache_hits == 3
        assert monitor.memo_hits == 3
        assert monitor.cache_hit_rate() == 1.0

    def test_job_failed_event(self):
        monitor = FleetMonitor()
        telemetry = FleetTelemetry(monitor.handle)
        # bogus workload kwargs: the job builds, the run raises
        bad = make_job(WorkerBenchmark, {"worker_set_size": 2, "bogus": 1},
                       protocol="DirnH5SNB", n_nodes=4)
        with pytest.raises(TypeError):
            execute_job(bad, telemetry=telemetry)
        assert monitor.failed == 1
        assert not monitor.running

    def test_monitor_aggregates(self):
        monitor = FleetMonitor()
        runner = JobRunner(jobs=1, telemetry=monitor)
        monitor.start(jobs=1)
        results = runner.run(tiny_plan())
        monitor.finish()
        total = sum(stats.run_cycles for stats in results.values())
        assert monitor.completed == 3
        assert monitor.sim_cycles_done == total
        assert monitor.planned == 3
        assert monitor.unique == 3
        assert monitor.queued == 0
        assert not monitor.running
        assert monitor.finished is not None
        assert monitor.finished["jobs_executed"] == 3


# ----------------------------------------------------------------------
# Pool runner telemetry
# ----------------------------------------------------------------------

class TestPoolTelemetry:
    def test_events_relay_from_worker_processes(self, tmp_path):
        log = str(tmp_path / "fleet.jsonl")
        monitor = FleetMonitor(log_path=log)
        runner = JobRunner(jobs=2, telemetry=monitor, heartbeat_every=200)
        monitor.start(jobs=runner.n_workers)
        runner.run(tiny_plan())
        monitor.finish(jobs_executed=runner.jobs_executed)

        events = read_fleet_log(log)
        kinds = [e["event"] for e in events]
        assert kinds.count("job_started") == 3
        assert kinds.count("job_finished") == 3
        pids = {e["pid"] for e in events if "pid" in e}
        assert pids and os.getpid() not in pids  # emitted by workers

    def test_pool_results_identical_with_and_without_telemetry(self):
        silent = JobRunner(jobs=2).run(tiny_plan())
        observed = JobRunner(jobs=2, telemetry=FleetMonitor()).run(
            tiny_plan())
        serial = JobRunner(jobs=1).run(tiny_plan())
        assert results_doc(silent) == results_doc(observed) \
            == results_doc(serial)

    def test_cache_dirs_identical_with_and_without_telemetry(self, tmp_path):
        def listing(root):
            paths = []
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                paths.extend(sorted(
                    os.path.relpath(os.path.join(dirpath, name), root)
                    for name in filenames))
            return paths

        silent_dir = str(tmp_path / "silent")
        observed_dir = str(tmp_path / "observed")
        JobRunner(jobs=1, cache=ResultCache(silent_dir)).run(tiny_plan())
        JobRunner(jobs=1, cache=ResultCache(observed_dir),
                  telemetry=FleetMonitor()).run(tiny_plan())
        assert listing(silent_dir) == listing(observed_dir)


# ----------------------------------------------------------------------
# Replay, summary, exports
# ----------------------------------------------------------------------

def sample_log(tmp_path):
    log = str(tmp_path / "fleet.jsonl")
    monitor = FleetMonitor(log_path=log)
    runner = JobRunner(jobs=1, telemetry=monitor, heartbeat_every=200)
    monitor.start(jobs=runner.n_workers)
    monitor.section("fig2")
    runner.run(tiny_plan())
    monitor.finish(jobs_executed=runner.jobs_executed)
    return log


class TestSummarize:
    def test_replay_matches_live_monitor(self, tmp_path):
        log = sample_log(tmp_path)
        summary = summarize_fleet_log(read_fleet_log(log))
        assert summary["schema"] == FLEETLOG_SCHEMA
        assert summary["completed"] == 3
        assert summary["failed"] == 0
        assert summary["sections"] == ["fig2"]
        assert summary["cache"]["hits"] == 0
        assert len(summary["jobs"]) == 3
        # slowest-first ordering
        walls = [row["wall_s"] for row in summary["jobs"]]
        assert walls == sorted(walls, reverse=True)

    def test_replay_is_deterministic(self, tmp_path):
        log = sample_log(tmp_path)
        events = read_fleet_log(log)
        assert summarize_fleet_log(events) == summarize_fleet_log(events)

    def test_format_summary(self, tmp_path):
        log = sample_log(tmp_path)
        text = format_fleet_summary(summarize_fleet_log(read_fleet_log(log)))
        assert "jobs: 3 completed" in text
        assert "slowest jobs:" in text
        assert "sections: fig2" in text

    def test_prometheus_snapshot(self, tmp_path):
        log = sample_log(tmp_path)
        text = prometheus_snapshot(summarize_fleet_log(read_fleet_log(log)))
        assert "repro_fleet_jobs_completed_total 3" in text
        assert "# TYPE repro_fleet_jobs_completed_total counter" in text
        assert "repro_fleet_sim_cycles_total" in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# ETA hints
# ----------------------------------------------------------------------

class TestEtaHints:
    def test_load_from_committed_bench_record(self):
        hints = load_eta_hints(
            os.path.join(os.path.dirname(__file__), os.pardir,
                         DEFAULT_ETA_HINTS))
        assert hints is not None
        assert "fig5" in hints
        assert all(v >= 0 for v in hints.values())

    def test_missing_record_is_none(self, tmp_path):
        assert load_eta_hints(str(tmp_path / "nope.json")) is None

    def test_eta_counts_down_pending_sections(self):
        monitor = FleetMonitor(sections=["a", "b"],
                               eta_hints={"a": 10.0, "b": 5.0})
        assert monitor.eta_seconds() == 15.0
        monitor.section("a")
        # section a just started: its full hint remains, plus b's
        assert monitor.eta_seconds() == pytest.approx(15.0, abs=1.0)
        monitor.section("b")
        assert monitor.eta_seconds() == pytest.approx(5.0, abs=1.0)

    def test_no_hints_no_eta(self):
        assert FleetMonitor().eta_seconds() is None


# ----------------------------------------------------------------------
# Progress rendering
# ----------------------------------------------------------------------

class _Sink:
    def __init__(self):
        self.lines = []

    def __call__(self, line):
        self.lines.append(line)


class TestProgressLine:
    def test_lifecycle_renders(self):
        sink = _Sink()
        monitor = FleetMonitor(on_line=sink)
        runner = JobRunner(jobs=1, telemetry=monitor)
        monitor.start(jobs=1)
        runner.run([tiny_job()])
        monitor.finish()
        assert sink.lines
        assert any("1/1 jobs" in line for line in sink.lines)

    def test_render_shows_failures_and_section(self):
        monitor = FleetMonitor()
        monitor.section("fig5")
        monitor.handle(event("plan_enqueued", planned=2, unique=2,
                             pending=2))
        monitor.handle(event("job_started", key="k1", pid=1))
        monitor.handle(event("job_failed", key="k1", pid=1, error="boom"))
        line = monitor.render_progress()
        assert "[fig5]" in line
        assert "1 FAILED" in line

    def test_printer_non_tty_appends_lines(self, tmp_path):
        out = (tmp_path / "progress.txt").open("w")
        printer = ProgressPrinter(stream=out)
        printer("one")
        printer("two")
        printer.done()
        out.close()
        assert (tmp_path / "progress.txt").read_text() == "one\ntwo\n"


# ----------------------------------------------------------------------
# RunProgress (repro run --progress) never perturbs the run
# ----------------------------------------------------------------------

class TestRunProgress:
    def test_observed_run_cycles_unchanged(self, tmp_path):
        def run(progress):
            machine = Machine(MachineParams(n_nodes=4),
                              protocol="DirnH5SNB")
            rp = None
            if progress:
                rp = RunProgress.attach(
                    machine, "test", every=200,
                    stream=(tmp_path / "p.txt").open("w"))
            stats = machine.run(WorkerBenchmark(**TINY))
            if rp is not None:
                rp.finish(stats)
            return stats.run_cycles

        assert run(progress=False) == run(progress=True)


# ----------------------------------------------------------------------
# Live tail: torn-record tolerance and atomic appends
# ----------------------------------------------------------------------

class TestLiveTail:
    def _started_log(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        writer = FleetLogWriter(path)
        writer.write(event("sweep_started", jobs=1, seq=1))
        writer.close()
        return path

    def test_truncated_final_line_dropped_when_tolerant(self, tmp_path):
        path = self._started_log(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"event":"job_queu')  # append torn mid-record
        events = read_fleet_log(path, tolerate_partial=True)
        assert [e["event"] for e in events] == ["fleet_log",
                                                "sweep_started"]

    def test_truncated_final_line_raises_by_default(self, tmp_path):
        path = self._started_log(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"event":"job_queu')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_fleet_log(path)

    def test_invalid_final_line_dropped_when_tolerant(self, tmp_path):
        path = self._started_log(tmp_path)
        with open(path, "a") as fh:
            fh.write(json.dumps(event("job_queued")) + "\n")  # no key
        events = read_fleet_log(path, tolerate_partial=True)
        assert [e["event"] for e in events] == ["fleet_log",
                                                "sweep_started"]

    def test_mid_file_corruption_still_raises_when_tolerant(self,
                                                            tmp_path):
        path = tmp_path / "fleet.jsonl"
        header = json.dumps(event("fleet_log", schema=FLEETLOG_SCHEMA))
        good = json.dumps(event("sweep_started", jobs=1))
        path.write_text(header + "\n{not json\n" + good + "\n")
        with pytest.raises(ValueError, match="fleet.jsonl:2"):
            read_fleet_log(str(path), tolerate_partial=True)

    def test_every_event_is_one_atomic_append(self, tmp_path,
                                              monkeypatch):
        writes = []
        real_write = os.write

        def spying_write(fd, data):
            writes.append(bytes(data))
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", spying_write)
        writer = FleetLogWriter(str(tmp_path / "fleet.jsonl"))
        writer.write(event("job_progress", key="k" * 4000, pid=1,
                           cycles=5, seq=1))
        writer.close()
        # header + one event: each record (payload and its newline)
        # left in exactly one os.write call — the atomicity unit.
        assert len(writes) == 2
        for data in writes:
            assert data.endswith(b"\n")
            assert data.count(b"\n") == 1
            json.loads(data.decode("utf-8"))

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        import threading

        path = str(tmp_path / "fleet.jsonl")
        first = FleetLogWriter(path)  # owns the header line
        n_each = 200

        def pound(writer, tag):
            for i in range(n_each):
                writer.write(event("job_progress", key=tag, pid=i,
                                   cycles=i, seq=i))

        second = FleetLogWriter(path)
        threads = [threading.Thread(target=pound, args=(first, "a")),
                   threading.Thread(target=pound, args=(second, "b"))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        first.close()
        second.close()
        events = read_fleet_log(path)  # every line parses + validates
        progress = [e for e in events if e["event"] == "job_progress"]
        assert len(progress) == 2 * n_each
        assert sorted(e["key"] for e in progress) == \
            ["a"] * n_each + ["b"] * n_each


# ----------------------------------------------------------------------
# Monitor fan-out to subscribers (the serve /events relay)
# ----------------------------------------------------------------------

class TestMonitorSubscribers:
    def test_subscriber_sees_sequenced_events_in_order(self):
        monitor = FleetMonitor()
        seen = []
        monitor.subscribe(seen.append)
        monitor.handle(event("sweep_started", jobs=1))
        monitor.handle(event("job_queued", key="k"))
        assert [e["event"] for e in seen] == ["sweep_started",
                                             "job_queued"]
        assert [e["seq"] for e in seen] == [0, 1]

    def test_unsubscribe_stops_delivery(self):
        monitor = FleetMonitor()
        seen = []
        callback = monitor.subscribe(seen.append)
        monitor.handle(event("sweep_started", jobs=1))
        monitor.unsubscribe(callback)
        monitor.handle(event("job_queued", key="k"))
        assert len(seen) == 1

    def test_raising_subscriber_is_dropped_others_survive(self):
        monitor = FleetMonitor()
        seen = []

        def broken(doc):
            raise RuntimeError("boom")

        monitor.subscribe(broken)
        monitor.subscribe(seen.append)
        monitor.handle(event("sweep_started", jobs=1))
        monitor.handle(event("job_queued", key="k"))
        # the raiser was removed after its first failure; the healthy
        # subscriber got every event and the monitor kept aggregating
        assert len(seen) == 2
        assert monitor.events_handled == 2

    def test_subscribers_see_the_same_stream_the_log_records(self,
                                                             tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        monitor = FleetMonitor(log_path=path)
        seen = []
        monitor.subscribe(seen.append)
        monitor.handle(event("sweep_started", jobs=2))
        monitor.handle(event("job_queued", key="k"))
        monitor.close()
        logged = read_fleet_log(path)[1:]  # skip header
        assert [json.dumps(e, sort_keys=True) for e in seen] == \
            [json.dumps(e, sort_keys=True) for e in logged]


# ----------------------------------------------------------------------
# Prometheus exposition-format validity
# ----------------------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


class TestPrometheusExposition:
    def _snapshot(self, tmp_path):
        return prometheus_snapshot(
            summarize_fleet_log(read_fleet_log(sample_log(tmp_path))))

    def test_every_line_parses(self, tmp_path):
        import re

        sample_re = re.compile(rf"^({_METRIC_NAME}) (\S+)$")
        help_re = re.compile(rf"^# HELP ({_METRIC_NAME}) \S.*$")
        type_re = re.compile(
            rf"^# TYPE ({_METRIC_NAME}) (counter|gauge)$")
        for line in self._snapshot(tmp_path).splitlines():
            if not line:
                continue
            if line.startswith("# HELP"):
                assert help_re.match(line), line
            elif line.startswith("# TYPE"):
                assert type_re.match(line), line
            else:
                match = sample_re.match(line)
                assert match, line
                float(match.group(2))  # value must round-trip

    def test_help_and_type_precede_every_sample(self, tmp_path):
        import re

        helped, typed = set(), set()
        for line in self._snapshot(tmp_path).splitlines():
            if line.startswith("# HELP"):
                helped.add(line.split()[2])
            elif line.startswith("# TYPE"):
                typed.add(line.split()[2])
            elif line:
                name = re.match(_METRIC_NAME, line).group(0)
                assert name in helped, f"{name} sample before # HELP"
                assert name in typed, f"{name} sample before # TYPE"

    def test_no_duplicate_metric_names(self, tmp_path):
        names = [line.split()[0]
                 for line in self._snapshot(tmp_path).splitlines()
                 if line and not line.startswith("#")]
        assert len(names) == len(set(names))

    def test_ends_with_newline(self, tmp_path):
        assert self._snapshot(tmp_path).endswith("\n")


# ----------------------------------------------------------------------
# ETA surfaces in the summary document
# ----------------------------------------------------------------------

class TestSummaryEta:
    def test_eta_none_without_hints(self):
        assert FleetMonitor().summary()["eta_s"] is None

    def test_eta_present_mid_sweep_and_cleared_when_finished(self):
        monitor = FleetMonitor(sections=["a", "b"],
                               eta_hints={"a": 10.0, "b": 5.0})
        assert monitor.summary()["eta_s"] == pytest.approx(15.0, abs=1.0)
        monitor.handle(event("sweep_finished", wall_s=1.0,
                             jobs_executed=0))
        assert monitor.summary()["eta_s"] is None

    def test_rate_hint_loads_from_committed_bench_record(self):
        from repro.obs.fleet import load_rate_hint

        rate = load_rate_hint(
            os.path.join(os.path.dirname(__file__), os.pardir,
                         DEFAULT_ETA_HINTS))
        assert rate is not None and rate > 0

    def test_rate_hint_missing_file_is_none(self, tmp_path):
        from repro.obs.fleet import load_rate_hint

        assert load_rate_hint(str(tmp_path / "nope.json")) is None
