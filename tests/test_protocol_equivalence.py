"""A/B equivalence of the table-driven engine vs. the old controllers.

``tests/data/protocol_equivalence.json`` pins run cycles, trap counts
and the full :meth:`~repro.sim.stats.RunStats.digest` of a matrix of
deterministic runs recorded with the hand-written home controllers,
*before* the table-driven protocol engine replaced them.  Replaying
every configuration and matching byte-for-byte proves the refactor
behaviour-preserving across the whole spectrum — full-map, limited
pointers with software extension, LACK/ACK variants, broadcast, and the
software-only directory, plus the Section 7 enhancement paths.

Every configuration runs under *both* dispatch modes — the exec-
compiled per-table code and the interpreted reference engine
(:mod:`repro.core.protocol.compile`) — so the fixture simultaneously
gates the table refactor and the table compiler: compiled dispatch
must match the interpreter cycle-for-cycle, digest-for-digest.

Regenerate (only for *intentional* behaviour changes) with::

    PYTHONPATH=src python tools/gen_protocol_fixture.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.aq import AdaptiveQuadrature
from repro.workloads.worker import WorkerBenchmark

FIXTURE = Path(__file__).parent / "data" / "protocol_equivalence.json"

with FIXTURE.open(encoding="utf-8") as fh:
    _FIXTURE = json.load(fh)


def _workload_for(config_id: str):
    if config_id.startswith("worker8x2"):
        return WorkerBenchmark(worker_set_size=8, iterations=2)
    if config_id.startswith("worker6x2"):
        return WorkerBenchmark(worker_set_size=6, iterations=2)
    assert config_id.startswith("aq"), config_id
    return AdaptiveQuadrature()


@pytest.mark.parametrize("dispatch", ["compiled", "interpreted"])
@pytest.mark.parametrize(
    "entry", _FIXTURE["entries"], ids=[e["id"] for e in _FIXTURE["entries"]]
)
def test_byte_identical_with_prerefactor_controllers(entry, dispatch):
    kwargs = dict(entry["machine"])
    machine = Machine(MachineParams(n_nodes=_FIXTURE["n_nodes"]),
                      dispatch=dispatch, **kwargs)
    stats = machine.run(_workload_for(entry["id"]))
    assert stats.run_cycles == entry["run_cycles"], entry["id"]
    assert stats.total_traps == entry["total_traps"], entry["id"]
    assert stats.digest() == entry["digest"], (
        f"{entry['id']}: statistics digest diverged from the "
        f"pre-refactor controllers"
    )
