"""Tests for the analysis helpers and experiment drivers (quick sizes)."""

import pytest

from repro.analysis.experiments import (
    CLOCK_HZ,
    fig2_worker_ratios,
    relative_performance,
    run_one,
    table1_handler_latencies,
    table2_breakdowns,
)
from repro.analysis.report import (
    format_bar_chart,
    format_histogram,
    format_series_plot,
    format_table,
)
from repro.analysis.workersets import (
    decay_slope,
    hardware_coverage,
    histogram_summary,
)
from repro.workloads.worker import WorkerBenchmark


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [(1, 2.5), (10, 3.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_bar_chart(self):
        text = format_bar_chart(["x", "yy"], [1.0, 2.0])
        assert "#" in text
        assert "yy" in text

    def test_format_bar_chart_empty_value(self):
        text = format_bar_chart(["x"], [0.0])
        assert "0.00" in text

    def test_format_histogram(self):
        text = format_histogram({1: 100, 4: 10, 8: 1}, title="H")
        lines = text.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 4

    def test_format_histogram_empty(self):
        assert "(empty)" in format_histogram({})

    def test_format_series_plot(self):
        text = format_series_plot(
            {"one": [(1.0, 1.0), (2.0, 2.0)],
             "two": [(1.0, 2.0), (2.0, 1.0)]},
            title="P")
        lines = text.splitlines()
        assert lines[0] == "P"
        assert "A = one" in text and "B = two" in text
        assert "A" in "".join(lines[1:-2])

    def test_format_series_plot_empty(self):
        assert format_series_plot({}, title="T") == "T"

    def test_format_series_plot_flat_series(self):
        text = format_series_plot({"flat": [(0.0, 5.0), (10.0, 5.0)]})
        assert "A = flat" in text


class TestWorkerSetAnalysis:
    def test_summary(self):
        summary = histogram_summary({1: 90, 2: 5, 8: 5})
        assert summary["blocks"] == 100
        assert summary["max_size"] == 8
        assert summary["small_fraction"] == pytest.approx(0.95)
        assert summary["large_sets"] == 5

    def test_summary_empty(self):
        assert histogram_summary({})["blocks"] == 0

    def test_decay_slope_negative_for_decaying(self):
        hist = {1: 1000, 2: 300, 4: 60, 8: 10, 16: 2}
        assert decay_slope(hist) < 0

    def test_decay_slope_degenerate(self):
        assert decay_slope({3: 10}) == 0.0

    def test_hardware_coverage(self):
        hist = {1: 50, 2: 30, 6: 20}
        assert hardware_coverage(hist, 5) == pytest.approx(0.8)
        assert hardware_coverage(hist, 64) == 1.0
        assert hardware_coverage({}, 5) == 1.0


class TestDrivers:
    def test_table1_reproduces_medians(self):
        rows = table1_handler_latencies(readers=(8,), iterations=1)
        row = rows[0]
        assert row.c_read == pytest.approx(480, abs=2)
        assert row.asm_read == pytest.approx(193, abs=2)
        assert row.c_write == pytest.approx(737, abs=2)
        assert row.asm_write == pytest.approx(384, abs=2)
        # Section 4.2: hand-tuning buys about a factor of two.
        assert 1.6 <= row.c_read / row.asm_read <= 2.8

    def test_table2_breakdowns_match_paper(self):
        breakdowns = table2_breakdowns(iterations=1)
        c_read = breakdowns[("read", "flexible")]
        assert sum(c_read.values()) == 480
        assert c_read["store pointers into extended directory"] == 235
        asm_write = breakdowns[("write", "optimized")]
        assert sum(asm_write.values()) == 384
        assert asm_write["invalidation lookup and transmit"] == 251

    def test_fig2_ratios_at_least_one(self):
        curves = fig2_worker_ratios(sizes=(2, 8), iterations=1,
                                    protocols=("DirnH5SNB", "DirnH1SNB,ACK"))
        for protocol, points in curves.items():
            assert len(points) == 2
            for _size, ratio in points:
                assert ratio >= 0.95

    def test_fig2_more_pointers_never_much_worse(self):
        curves = fig2_worker_ratios(sizes=(8,), iterations=2,
                                    protocols=("DirnH1SNB,ACK", "DirnH5SNB"))
        h1 = curves["DirnH1SNB,ACK"][0][1]
        h5 = curves["DirnH5SNB"][0][1]
        assert h5 <= h1

    def test_relative_performance(self):
        rel = relative_performance(
            {"DirnHNBS-": 40.0, "DirnH5SNB": 30.0})
        assert rel["DirnHNBS-"] == 1.0
        assert rel["DirnH5SNB"] == pytest.approx(0.75)

    def test_run_one_worker(self):
        stats = run_one(WorkerBenchmark(worker_set_size=2, iterations=1),
                        "DirnH5SNB", n_nodes=4, victim_cache=False)
        assert stats.run_cycles > 0
        assert CLOCK_HZ == 33_000_000
