"""Applications across machine sizes: every workload runs correctly on
small, medium, and single-node machines, and speedups scale sanely."""

import pytest

from repro.analysis.experiments import APPLICATIONS
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.workloads.aq import ANALYTIC_RESULT, AdaptiveQuadrature
from repro.workloads.evolve import Evolve
from repro.workloads.mp3d import MP3D
from repro.workloads.smgrid import StaticMultigrid
from repro.workloads.tsp import TSP
from repro.workloads.water import Water

SMALL_FACTORIES = {
    "tsp": lambda: TSP(n_cities=8, prefix_depth=2),
    "aq": lambda: AdaptiveQuadrature(tolerance=0.2),
    "smgrid": lambda: StaticMultigrid(n=16, levels=2, v_cycles=1),
    "evolve": lambda: Evolve(dimensions=8, walks_per_node=2),
    "mp3d": lambda: MP3D(n_particles=64, steps=2),
    "water": lambda: Water(n_molecules=12, steps=2),
}


def run(factory, n_nodes, protocol="DirnH5SNB"):
    machine = Machine(
        MachineParams(n_nodes=n_nodes, victim_cache_enabled=True),
        protocol=protocol)
    workload = factory()
    stats = machine.run(workload)
    return workload, stats


@pytest.mark.parametrize("name", sorted(SMALL_FACTORIES))
@pytest.mark.parametrize("n_nodes", [1, 4, 16])
def test_every_app_runs_at_every_size(name, n_nodes):
    _w, stats = run(SMALL_FACTORIES[name], n_nodes)
    assert stats.run_cycles > 0
    assert stats.n_nodes == n_nodes


@pytest.mark.parametrize("name", sorted(SMALL_FACTORIES))
def test_single_node_speedup_near_one(name):
    _w, stats = run(SMALL_FACTORIES[name], 1)
    # One node, everything local: the run should be close to the
    # sequential estimate (within the cold-miss overhead).
    assert 0.5 <= stats.speedup <= 1.01


@pytest.mark.parametrize("name", sorted(SMALL_FACTORIES))
def test_more_nodes_improve_speedup(name):
    # EVOLVE and AQ scale their work with the node count (weak
    # scaling), so compare speedup — valid for both scaling styles.
    _w1, one = run(SMALL_FACTORIES[name], 1)
    _w16, sixteen = run(SMALL_FACTORIES[name], 16)
    assert sixteen.speedup > one.speedup


@pytest.mark.parametrize("name", sorted(SMALL_FACTORIES))
def test_no_software_traps_on_full_map(name):
    _w, stats = run(SMALL_FACTORIES[name], 16, protocol="DirnHNBS-")
    assert stats.total_traps == 0


def test_results_correct_at_small_scale():
    w, _stats = run(SMALL_FACTORIES["tsp"], 4)
    assert w.best_found == w.optimal
    w, _stats = run(SMALL_FACTORIES["aq"], 4)
    assert abs(w.result - ANALYTIC_RESULT) < 1.0
    w, _stats = run(SMALL_FACTORIES["smgrid"], 4)
    assert w.final_residual < w.initial_residual


def test_default_factories_are_64_node_calibrated():
    for name, factory in APPLICATIONS.items():
        workload = factory()
        assert workload.name == name
