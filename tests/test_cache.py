"""Tests for the direct-mapped cache and victim cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cache import DirectMappedCache, VictimCache
from repro.common.types import CacheState

RO = CacheState.READ_ONLY
RW = CacheState.READ_WRITE
INV = CacheState.INVALID


class TestDirectMapped:
    def test_fill_then_hit(self):
        cache = DirectMappedCache(64)
        assert cache.fill(5, RO) == []
        state, from_victim = cache.lookup(5)
        assert state is RO and not from_victim

    def test_miss_on_absent(self):
        cache = DirectMappedCache(64)
        assert cache.lookup(5) == (INV, False)

    def test_conflict_eviction(self):
        cache = DirectMappedCache(64)
        cache.fill(5, RO)
        evicted = cache.fill(5 + 64, RW)
        assert [e.block for e in evicted] == [5]
        assert not evicted[0].dirty
        assert cache.lookup(5) == (INV, False)

    def test_dirty_eviction_flagged(self):
        cache = DirectMappedCache(64)
        cache.fill(9, RW)
        evicted = cache.fill(9 + 64, RO)
        assert evicted[0].dirty

    def test_refill_same_block_upgrades(self):
        cache = DirectMappedCache(64)
        cache.fill(7, RO)
        assert cache.fill(7, RW) == []
        assert cache.probe(7) is RW

    def test_invalidate(self):
        cache = DirectMappedCache(64)
        cache.fill(3, RO)
        assert cache.invalidate(3) is RO
        assert cache.probe(3) is INV
        assert cache.invalidate(3) is INV

    def test_downgrade(self):
        cache = DirectMappedCache(64)
        cache.fill(3, RW)
        assert cache.downgrade(3) is RW
        assert cache.probe(3) is RO

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            DirectMappedCache(60)

    def test_resident_blocks(self):
        cache = DirectMappedCache(64)
        cache.fill(1, RO)
        cache.fill(2, RW)
        assert sorted(cache.resident_blocks()) == [1, 2]


class TestVictimCache:
    def test_eviction_lands_in_victim(self):
        cache = DirectMappedCache(64, victim_entries=2)
        cache.fill(5, RO)
        assert cache.fill(5 + 64, RO) == []  # victim absorbs it
        state, from_victim = cache.lookup(5)
        assert state is RO and from_victim

    def test_victim_hit_swaps_back(self):
        cache = DirectMappedCache(64, victim_entries=2)
        cache.fill(5, RO)
        cache.fill(5 + 64, RO)
        cache.lookup(5)  # swap 5 back into the main array
        state, from_victim = cache.lookup(5)
        assert state is RO and not from_victim
        # The displaced line is now in the victim buffer.
        state, from_victim = cache.lookup(5 + 64)
        assert state is RO and from_victim

    def test_victim_overflow_evicts_fifo(self):
        cache = DirectMappedCache(64, victim_entries=1)
        cache.fill(5, RW)
        assert cache.fill(5 + 64, RO) == []  # 5 -> victim
        evicted = cache.fill(5 + 128, RO)  # pushes 5 out entirely
        assert [e.block for e in evicted] == [5]
        assert evicted[0].dirty

    def test_ping_pong_conflict_absorbed(self):
        """The Jouppi scenario: two conflicting hot lines both stay
        resident with a victim cache."""
        cache = DirectMappedCache(64, victim_entries=2)
        a, b = 10, 10 + 64
        cache.fill(a, RO)
        cache.fill(b, RO)
        for _ in range(20):
            assert cache.lookup(a)[0] is RO
            assert cache.lookup(b)[0] is RO
        assert cache.victim is not None
        assert cache.victim.hits >= 20

    def test_invalidate_reaches_victim(self):
        cache = DirectMappedCache(64, victim_entries=2)
        cache.fill(5, RO)
        cache.fill(5 + 64, RO)
        assert cache.invalidate(5) is RO  # 5 is in the victim buffer
        assert cache.probe(5) is INV

    def test_downgrade_reaches_victim(self):
        cache = DirectMappedCache(64, victim_entries=2)
        cache.fill(5, RW)
        cache.fill(5 + 64, RO)
        assert cache.downgrade(5) is RW
        assert cache.probe(5) is RO

    def test_refill_drops_stale_victim_copy(self):
        cache = DirectMappedCache(64, victim_entries=2)
        cache.fill(5, RO)
        cache.fill(5 + 64, RO)  # 5 in victim
        cache.fill(5, RW)  # re-fill main; stale victim copy must go
        assert cache.probe(5) is RW
        assert cache.victim is not None and 5 not in cache.victim

    def test_zero_entry_victim_passthrough(self):
        victim = VictimCache(0)
        evicted = victim.insert(5, RO)
        assert evicted is not None and evicted.block == 5


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=300),
                              st.booleans()),
                    min_size=1, max_size=200),
           st.integers(min_value=0, max_value=4))
    def test_no_duplicate_residency(self, fills, victim_entries):
        """A block never appears in both the main array and the victim
        buffer, and a filled block is always immediately readable."""
        cache = DirectMappedCache(32, victim_entries=victim_entries)
        for block, dirty in fills:
            cache.fill(block, RW if dirty else RO)
            assert cache.probe(block) is not INV
            resident = cache.resident_blocks()
            assert len(resident) == len(set(resident))

    @given(st.lists(st.integers(min_value=0, max_value=200),
                    min_size=1, max_size=150))
    def test_capacity_never_exceeded(self, blocks):
        cache = DirectMappedCache(16, victim_entries=3)
        for block in blocks:
            cache.fill(block, RO)
            assert len(cache.resident_blocks()) <= 16 + 3

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=100))
    def test_lookup_never_loses_lines(self, blocks):
        """Looking up (including victim swaps) preserves residency."""
        cache = DirectMappedCache(16, victim_entries=2)
        for block in blocks:
            cache.fill(block, RO)
        before = set(cache.resident_blocks())
        for block in list(before):
            state, _ = cache.lookup(block)
            assert state is RO
        assert set(cache.resident_blocks()) == before
