"""API quality gates: every public item is documented, exports resolve,
and the package presents a coherent surface."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.analysis",
    "repro.analysis.cost",
    "repro.analysis.experiments",
    "repro.analysis.model",
    "repro.analysis.profiling",
    "repro.analysis.regression",
    "repro.analysis.report",
    "repro.analysis.reportgen",
    "repro.analysis.verify",
    "repro.analysis.workersets",
    "repro.cache",
    "repro.cache.cache",
    "repro.cli",
    "repro.common",
    "repro.common.errors",
    "repro.common.types",
    "repro.core",
    "repro.core.cache_ctrl",
    "repro.core.directory",
    "repro.core.home",
    "repro.core.messages",
    "repro.core.protocol",
    "repro.core.protocol.backends",
    "repro.core.protocol.compile",
    "repro.core.protocol.engine",
    "repro.core.protocol.invariants",
    "repro.core.protocol.render",
    "repro.core.protocol.table",
    "repro.core.software",
    "repro.core.software.costmodel",
    "repro.core.software.extdir",
    "repro.core.software.handlers",
    "repro.core.software.interface",
    "repro.core.spec",
    "repro.exec",
    "repro.exec.cache",
    "repro.exec.jobs",
    "repro.exec.pool",
    "repro.machine",
    "repro.machine.barrier",
    "repro.machine.heap",
    "repro.machine.machine",
    "repro.machine.node",
    "repro.machine.params",
    "repro.machine.processor",
    "repro.machine.sync",
    "repro.network",
    "repro.network.detailed",
    "repro.network.fabric",
    "repro.network.topology",
    "repro.obs",
    "repro.obs.attribution",
    "repro.obs.events",
    "repro.obs.export",
    "repro.obs.fleet",
    "repro.obs.hist",
    "repro.obs.spans",
    "repro.obs.timeseries",
    "repro.serve",
    "repro.serve.app",
    "repro.serve.http",
    "repro.serve.specs",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.shard",
    "repro.sim.stats",
    "repro.sim.trace",
    "repro.sim.windows",
    "repro.verify",
    "repro.verify.abstract",
    "repro.verify.flow",
    "repro.verify.flow.absint",
    "repro.verify.flow.cfg",
    "repro.verify.flow.shardsafe",
    "repro.verify.flow.taint",
    "repro.verify.flow.transval",
    "repro.verify.lint",
    "repro.verify.modelcheck",
    "repro.verify.report",
    "repro.workloads",
    "repro.workloads.aq",
    "repro.workloads.base",
    "repro.workloads.evolve",
    "repro.workloads.mp3d",
    "repro.workloads.smgrid",
    "repro.workloads.synthetic",
    "repro.workloads.tsp",
    "repro.workloads.water",
    "repro.workloads.worker",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        attr = getattr(module, attr_name)
        if getattr(attr, "__module__", None) != name:
            continue  # re-export; documented at its home
        if inspect.isclass(attr) or inspect.isfunction(attr):
            assert attr.__doc__, f"{name}.{attr_name} lacks a docstring"


def test_all_exports_resolve():
    for name in MODULES:
        module = importlib.import_module(name)
        for export in getattr(module, "__all__", []):
            assert hasattr(module, export), f"{name}.__all__: {export}"


def test_no_module_missing_from_quality_list():
    found = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        found.add(info.name)
    missing = found - set(MODULES)
    assert not missing, f"add to MODULES: {sorted(missing)}"


def test_version_is_semver():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
