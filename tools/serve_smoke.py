#!/usr/bin/env python
"""CI smoke test for ``repro serve`` (the serve-smoke job).

Boots the real server as a subprocess (``python -m repro serve``),
then drives the two hard service invariants end to end, over actual
sockets, against the actual CLI:

1. **In-flight dedup**: two clients submit the same spec concurrently;
   exactly one simulation runs and both receive byte-identical
   payloads.
2. **Byte identity with the CLI**: the ``/analyze`` document and the
   ``/experiments`` report fetched over HTTP are compared byte-for-byte
   against ``python -m repro analyze`` / ``python -m repro
   experiments`` writing files — and the ``/analyze`` bytes must also
   agree between a ``--jobs 1`` server and a ``--jobs auto`` server.

Plus a sanity pass over the observability plane: ``/metrics`` carries
the fleet exposition and ``/events`` streams the job lifecycle live.

Exits non-zero (with a diagnostic) on any violation.  Stdlib only.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

TINY_SPEC = {
    "workload": "worker",
    "workload_kwargs": {"worker_set_size": 2, "iterations": 1},
    "nodes": 4,
}
ANALYZE_SPEC = {"app": "worker", "nodes": 4, "size": 2,
                "iterations": 1, "protocol": "DirnH2SNB"}
ANALYZE_ARGS = ["analyze", "--app", "worker", "--nodes", "4",
                "--size", "2", "--iterations", "1",
                "--protocol", "DirnH2SNB"]


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def http(method, port, path, doc=None, timeout=300):
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read()


class Server:
    """One ``repro serve`` subprocess on a fresh port."""

    def __init__(self, jobs, cache_dir, fleet_log=None):
        self.port = free_port()
        argv = [sys.executable, "-m", "repro", "serve",
                "--port", str(self.port), "--jobs", jobs,
                "--cache-dir", cache_dir]
        if fleet_log:
            argv += ["--fleet-log", fleet_log]
        # Own session/process group: if graceful shutdown ever breaks,
        # stop() can still sweep up the farm's worker processes rather
        # than leave orphans holding this script's stdout pipe open
        # (which would wedge the CI step long after we exit).
        self.proc = subprocess.Popen(argv, start_new_session=True)

    def wait_ready(self, deadline_s=60):
        t0 = time.time()
        while time.time() - t0 < deadline_s:
            if self.proc.poll() is not None:
                raise SystemExit(
                    f"server exited early: rc={self.proc.returncode}")
            try:
                http("GET", self.port, "/healthz", timeout=5)
                return self
            except (urllib.error.URLError, OSError):
                time.sleep(0.2)
        raise SystemExit("server did not become healthy in time")

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass


def check(condition, message):
    if not condition:
        raise SystemExit(f"serve-smoke FAILED: {message}")


def main():
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    cache_a = os.path.join(workdir, "cache-a")
    report = {"checks": []}

    def ok(name):
        report["checks"].append(name)
        print(f"serve-smoke: {name}: OK", flush=True)

    server = Server("2", cache_a,
                    fleet_log=os.path.join(workdir, "fleet.jsonl"))
    try:
        server.wait_ready()

        # --- 1. concurrent same-spec submissions execute once -------
        stream = socket.create_connection(("127.0.0.1", server.port),
                                          timeout=60)
        stream.sendall(b"GET /events HTTP/1.1\r\nHost: s\r\n\r\n")
        stream.settimeout(120)

        bodies = [None, None]

        def client(slot):
            bodies[slot] = http("POST", server.port, "/jobs?wait=1",
                                TINY_SPEC)

        threads = [threading.Thread(target=client, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        check(bodies[0] is not None and bodies[0] == bodies[1],
              "concurrent clients got different payloads")
        docs = json.loads(bodies[0])
        check(docs["state"] == "done", f"job not done: {docs}")
        check(docs["submissions"] == 2,
              f"expected 2 submissions, got {docs['submissions']}")
        status = json.loads(http("GET", server.port, "/status"))
        check(status["server"]["jobs_executed"] == 1,
              f"expected exactly 1 execution, got "
              f"{status['server']['jobs_executed']}")
        ok("in-flight dedup (1 execution, identical payloads)")

        # --- 2. observability plane ---------------------------------
        metrics = http("GET", server.port, "/metrics").decode()
        check("repro_fleet_jobs_completed_total 1" in metrics,
              f"metrics missing completion counter:\n{metrics}")
        buf = b""
        while b"job_finished" not in buf:
            chunk = stream.recv(65536)
            check(chunk, "event stream closed before job_finished")
            buf += chunk
        check(b"event: job_started" in buf,
              "event stream missing job_started")
        stream.close()
        ok("live plane (/metrics exposition, /events lifecycle)")

        # --- 3. /analyze bytes == CLI bytes -------------------------
        served_analyze = http("POST", server.port, "/analyze",
                              ANALYZE_SPEC)
        cli_analyze = os.path.join(workdir, "analyze-cli.json")
        subprocess.run([sys.executable, "-m", "repro"] + ANALYZE_ARGS
                       + ["--out", cli_analyze], check=True,
                       stdout=subprocess.DEVNULL)
        with open(cli_analyze, "rb") as fh:
            check(served_analyze == fh.read(),
                  "/analyze differs from `repro analyze` output")
        ok("/analyze byte-identical to the CLI artifact")

        # --- 4. /experiments bytes == CLI bytes ---------------------
        served_report = http("POST", server.port, "/experiments",
                             {"preset": "quick"}, timeout=900)
        cli_report = os.path.join(workdir, "EXPERIMENTS.md")
        subprocess.run([sys.executable, "-m", "repro", "experiments",
                        "--quick", "--no-cache", "--out", cli_report],
                       check=True, stdout=subprocess.DEVNULL)
        with open(cli_report, "rb") as fh:
            check(served_report == fh.read(),
                  "/experiments differs from `repro experiments` output")
        ok("/experiments byte-identical to the CLI report")
    finally:
        server.stop()

    # --- 5. --jobs 1 vs --jobs auto serve identical bytes -----------
    for jobs in ("1", "auto"):
        other = Server(jobs, os.path.join(workdir, f"cache-{jobs}"))
        try:
            other.wait_ready()
            body = http("POST", other.port, "/analyze", ANALYZE_SPEC)
            check(body == served_analyze,
                  f"--jobs {jobs} server served different bytes")
        finally:
            other.stop()
    ok("byte-identical across --jobs 1 and --jobs auto servers")

    print(f"serve-smoke: all {len(report['checks'])} checks passed")


if __name__ == "__main__":
    main()
