"""Refresh the rendered transition tables in ``docs/protocols.md``.

The tables between the ``<!-- protocol-table:...:begin/end -->``
markers are generated from the executable protocol tables in
``repro.core.protocol.table``; ``tests/test_docs_render.py`` asserts
the file is a fixed point of this script, so run it whenever a
transition row changes::

    PYTHONPATH=src python tools/render_protocol_docs.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.protocol.render import embed_rendered_tables  # noqa: E402

DOC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "protocols.md",
)


def main() -> int:
    with open(DOC_PATH, "r", encoding="utf-8") as fh:
        before = fh.read()
    after = embed_rendered_tables(before)
    if after == before:
        print(f"{DOC_PATH} already up to date")
        return 0
    with open(DOC_PATH, "w", encoding="utf-8") as fh:
        fh.write(after)
    print(f"rewrote the rendered tables in {DOC_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
