#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Thin wrapper over :mod:`repro.analysis.reportgen` (also reachable as
``python -m repro experiments``).  Runs every experiment driver through
the parallel job runner and writes the records file the repository
ships.  Usage::

    python tools/generate_experiments.py [output] [--jobs N|auto]
                                         [--quick] [--no-cache]
                                         [--cache-dir DIR]

The output is byte-identical for every ``--jobs`` value: jobs are keyed
by canonical spec and merged in plan order, and each simulation is
deterministic.  With the cache warm (the default cache dir is
``.repro-cache/``), a re-run completes in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.reportgen import write_experiments_md
from repro.exec import DEFAULT_CACHE_DIR, JobRunner, ResultCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--jobs", default="1", metavar="N",
                        help="worker processes: a count or 'auto' "
                             "(default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-gate problem sizes")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)

    runner = JobRunner(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
    )
    t0 = time.time()
    write_experiments_md(
        args.output, runner=runner,
        preset="quick" if args.quick else "full",
        progress=lambda line: print(line, flush=True),
    )
    cache = runner.cache
    cache_note = ("cache off" if cache is None
                  else f"{cache.hits} cache hits")
    print(f"wrote {args.output} ({time.time() - t0:.0f}s, "
          f"{runner.jobs_executed} jobs run, "
          f"{runner.jobs_deduplicated + runner.memo_hits} deduplicated, "
          f"{cache_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
