"""Regenerate the committed cycle-attribution baseline.

The baseline (``baselines/worker16-attribution.json``) pins the full
bucket-by-bucket attribution of the 16-node WORKER stress test at the
default ``repro analyze`` configuration.  CI diffs every push against
it (``repro diff --baseline``), so a change that silently shifts stall
cycles between buckets — a slower handler, extra retries, a longer
network path — fails the build as an *attributed* regression instead
of unexplained drift.

Regenerate only when simulated behaviour changes *intentionally* (a
cost-model retune, a protocol fix), and say so in the commit message::

    PYTHONPATH=src python tools/gen_attribution_baseline.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.cli import DEFAULT_BASELINE, main  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), DEFAULT_BASELINE,
)


if __name__ == "__main__":
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    # The baseline IS the default `repro analyze` artifact; going
    # through the CLI keeps the two from drifting apart.
    code = main(["analyze", "--out", BASELINE_PATH])
    sys.exit(code)
