#!/usr/bin/env python3
"""Benchmark the experiment pipeline; writes ``BENCH_experiments.json``.

Seeds the performance trajectory for the repository: each PR that
touches the engine or the runner can re-run this tool and compare
against the committed record.  Measured quantities:

- **engine**: raw event-loop throughput (events/sec) — a drain bench
  (pop + dispatch of pre-scheduled events) and a chain bench
  (schedule + pop + dispatch), plus wall-clock for a reference WORKER
  simulation;
- **drivers**: wall-clock of every experiment driver at the quick
  preset, three ways — serial (``--jobs 1``, cache off), parallel
  (``--jobs auto``, cache off), and a warm-cache replay.

Usage::

    python tools/bench_experiments.py [output.json] [--preset quick|full]

Wall-clock numbers vary with the host; the point of the record is the
*trajectory* (this machine, PR over PR) and the derived ratios
(parallel speedup, cache speedup, events/sec).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import tempfile
import time

from repro.analysis import reportgen
from repro.analysis.experiments import (
    fig2_plan,
    fig3_plan,
    fig4_plan,
    fig5_plan,
    fig6_plan,
    table1_plan,
    table2_plan,
    table3_plan,
)
from repro.exec import JobRunner, ResultCache
from repro.machine.machine import Machine
from repro.machine.params import MachineParams
from repro.sim.engine import Simulator
from repro.workloads.worker import WorkerBenchmark

PLANNERS = {
    "table1": table1_plan,
    "table2": table2_plan,
    "table3": table3_plan,
    "fig2": fig2_plan,
    "fig3": fig3_plan,
    "fig4": fig4_plan,
    "fig5": fig5_plan,
    "fig6": fig6_plan,
}


# ----------------------------------------------------------------------
# Engine microbenchmarks
# ----------------------------------------------------------------------

def bench_engine_drain(n_events: int = 300_000) -> dict:
    """Pop + dispatch throughput over a pre-scheduled heap."""
    sim = Simulator()
    noop = lambda: None  # noqa: E731 - the cheapest possible event body
    for t in range(n_events):
        sim.at(t, noop)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"events": n_events, "seconds": elapsed,
            "events_per_sec": n_events / elapsed}


def bench_engine_chain(n_events: int = 300_000) -> dict:
    """Schedule + pop + dispatch throughput: each event schedules the
    next, the simulator's steady-state shape."""
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.after(1, tick)

    sim.at(0, tick)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"events": n_events, "seconds": elapsed,
            "events_per_sec": n_events / elapsed}


#: Each timed quantity is repeated until it has accumulated at least
#: this much wall clock (sub-millisecond drivers would otherwise round
#: to a zero-second sample and an undefined rate).
MIN_BENCH_SECONDS = 0.25

#: Repetition ceiling, so trivially fast benchmarks still terminate.
MAX_BENCH_REPS = 50

#: The WORKER reference run is the PR-over-PR trajectory metric, so it
#: gets a larger budget: single runs on a busy host swing by +-10%,
#: and best-of-many is the stable estimator of the achievable rate.
WORKER_MIN_SECONDS = 2.5


def _worker_reference_once(dispatch: str) -> "tuple[float, int]":
    """One timed WORKER reference run; (seconds, run_cycles)."""
    t0 = time.perf_counter()
    machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                      dispatch=dispatch)
    stats = machine.run(WorkerBenchmark(worker_set_size=8, iterations=4))
    return time.perf_counter() - t0, stats.run_cycles


def bench_worker_reference() -> "tuple[dict, dict]":
    """Wall-clock of a reference software-heavy WORKER simulation,
    A/B'd across both dispatch modes.

    Repetitions *interleave* the two modes (alternating which goes
    first) until each has accumulated :data:`WORKER_MIN_SECONDS` of
    wall clock, and each mode reports its fastest repetition.  Running
    one mode's repetitions back-to-back before the other's — the
    obvious structure — is confounded on a busy host: wall clock
    drifts over the benchmark's lifetime, so whichever mode runs later
    inherits the drift as a fake (dis)advantage.  Interleaving spreads
    the drift evenly; best-of-many then estimates each mode's
    achievable rate.  (The first compiled repetition also carries the
    one-time table-compilation cost, which best-of amortises away.)
    """
    modes = ("compiled", "interpreted")
    best: dict = {mode: None for mode in modes}
    totals = {mode: 0.0 for mode in modes}
    cycles = 0
    pairs = 0
    while (min(totals.values()) < WORKER_MIN_SECONDS
           and pairs < MAX_BENCH_REPS):
        order = modes if pairs % 2 == 0 else tuple(reversed(modes))
        for mode in order:
            elapsed, cycles = _worker_reference_once(mode)
            totals[mode] += elapsed
            if best[mode] is None or elapsed < best[mode]:
                best[mode] = elapsed
        pairs += 1
    return tuple(  # type: ignore[return-value]
        {
            "config": "WORKER ws=8 it=4, 16 nodes, DirnH5SNB",
            "dispatch": mode,
            "reps": pairs,
            "seconds": best[mode],
            "run_cycles": cycles,
            "sim_cycles_per_sec": cycles / best[mode],
        }
        for mode in modes
    )


# ----------------------------------------------------------------------
# Driver benchmarks
# ----------------------------------------------------------------------

def _plans(preset: str) -> dict:
    sizes_of = reportgen.PRESETS[preset]
    return {name: planner(**sizes_of[name])
            for name, planner in PLANNERS.items()}


def _time_sweep(plans: dict, make_runner) -> "tuple[dict, dict]":
    """Wall seconds and summed simulated cycles per driver.

    ``make_runner`` is a zero-argument factory: the runner memoizes
    results in-process, so every timed repetition needs a fresh one.
    Each driver repeats until :data:`MIN_BENCH_SECONDS` of wall clock
    has accumulated (sub-millisecond drivers — e.g. table2, whose jobs
    all alias table1's — previously rounded to ``0.0`` seconds and a
    ``null`` rate) and reports the mean seconds per repetition.

    Cycles come from the result map (every planned job, executed or
    replayed), so ``cycles / seconds`` is the driver's effective
    sim-cycle throughput under this runner — the same quantity the
    fleet monitor reports live as ``sim_cycles_per_sec``.
    """
    timings = {}
    cycles = {}
    for name, plan in plans.items():
        total = 0.0
        reps = 0
        while total < MIN_BENCH_SECONDS and reps < MAX_BENCH_REPS:
            runner = make_runner()
            t0 = time.perf_counter()
            results = runner.run(plan)
            total += time.perf_counter() - t0
            reps += 1
        timings[name] = total / reps
        cycles[name] = sum(stats.run_cycles for stats in results.values())
    return timings, cycles


def bench_drivers(preset: str) -> dict:
    """Serial vs parallel vs warm-cache wall clock per driver."""
    plans = _plans(preset)

    serial, sim_cycles = _time_sweep(plans, lambda: JobRunner(jobs=1))

    parallel_runner = JobRunner(jobs="auto")
    parallel, _ = _time_sweep(plans, lambda: JobRunner(jobs="auto"))

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        JobRunner(jobs=1, cache=cache).run(
            [job for plan in plans.values() for job in plan])  # populate
        warm, _ = _time_sweep(plans, lambda: JobRunner(jobs=1, cache=cache))

    serial_total = round(sum(serial.values()), 3)
    parallel_total = round(sum(parallel.values()), 3)
    warm_total = round(sum(warm.values()), 3)
    return {
        "preset": preset,
        "parallel_workers": parallel_runner.n_workers,
        "per_driver": {
            name: {"serial_s": round(serial[name], 6),
                   "parallel_s": round(parallel[name], 6),
                   "warm_cache_s": round(warm[name], 6),
                   "sim_cycles": sim_cycles[name],
                   "sim_cycles_per_sec": round(
                       sim_cycles[name] / serial[name], 1)}
            for name in plans
        },
        "totals": {
            "serial_s": serial_total,
            "parallel_s": parallel_total,
            "warm_cache_s": warm_total,
            "parallel_speedup": round(
                serial_total / parallel_total, 2) if parallel_total else None,
            "cache_speedup": round(
                serial_total / warm_total, 1) if warm_total else None,
        },
    }


def bench_shard_scaling(preset: str,
                        shard_counts=(1, 2, 4)) -> dict:
    """Wall clock of the fig5 sweep under the sharded engine.

    Runs the identical plan at each ``--shards`` count through a fresh
    serial runner (``--jobs 1``, cache off), so the only variable is
    the per-job shard count.  The result maps must be byte-identical
    across counts — the bench doubles as an end-to-end equivalence
    gate and aborts on divergence rather than record a meaningless
    speedup.

    Speedups are honest for *this host*: on a single-core runner the
    sharded engine pays window-barrier IPC for no parallelism and the
    ratio sits below 1.0; the ISSUE's >= 1.5x target needs >= 4 cores.
    """
    plan = PLANNERS["fig5"](**reportgen.PRESETS[preset]["fig5"])
    baseline_doc = None
    per_shards = {}
    for shards in shard_counts:
        total = 0.0
        reps = 0
        results = None
        while total < MIN_BENCH_SECONDS and reps < MAX_BENCH_REPS:
            runner = JobRunner(jobs=1, shards=shards)
            t0 = time.perf_counter()
            results = runner.run(plan)
            total += time.perf_counter() - t0
            reps += 1
        doc = json.dumps(
            {key: stats.to_json_dict() for key, stats in results.items()},
            sort_keys=True)
        if baseline_doc is None:
            baseline_doc = doc
        elif doc != baseline_doc:
            raise SystemExit(
                f"sharded fig5 sweep diverged from serial at "
                f"--shards {shards}")
        per_shards[str(shards)] = {"seconds": round(total / reps, 6),
                                   "reps": reps}
    serial_s = per_shards[str(shard_counts[0])]["seconds"]
    for entry in per_shards.values():
        entry["speedup_vs_serial"] = round(serial_s / entry["seconds"], 2)
    return {
        "preset": preset,
        "config": "fig5 sweep, --jobs 1",
        "jobs": len(plan),
        "identical_to_serial": True,
        "per_shards": per_shards,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?",
                        default="BENCH_experiments.json")
    parser.add_argument("--preset", choices=sorted(reportgen.PRESETS),
                        default="quick",
                        help="driver problem sizes (default quick)")
    args = parser.parse_args(argv)

    print("engine: drain bench...", flush=True)
    drain = bench_engine_drain()
    print(f"  {drain['events_per_sec']:,.0f} events/sec", flush=True)
    print("engine: chain bench...", flush=True)
    chain = bench_engine_chain()
    print(f"  {chain['events_per_sec']:,.0f} events/sec", flush=True)
    print("engine: WORKER reference (compiled/interpreted A/B)...",
          flush=True)
    worker, worker_interp = bench_worker_reference()
    speedup = (worker["sim_cycles_per_sec"]
               / worker_interp["sim_cycles_per_sec"])
    print(f"  compiled {worker['sim_cycles_per_sec']:,.0f}, interpreted "
          f"{worker_interp['sim_cycles_per_sec']:,.0f} sim cycles/sec "
          f"(compiled is {speedup:.2f}x)", flush=True)
    print(f"drivers ({args.preset} preset): serial, parallel, "
          f"warm cache...", flush=True)
    drivers = bench_drivers(args.preset)
    totals = drivers["totals"]
    print(f"  serial {totals['serial_s']}s, parallel "
          f"{totals['parallel_s']}s ({drivers['parallel_workers']} "
          f"workers, {totals['parallel_speedup']}x), warm cache "
          f"{totals['warm_cache_s']}s ({totals['cache_speedup']}x)",
          flush=True)
    print("shards: fig5 sweep at --shards 1/2/4...", flush=True)
    shard_scaling = bench_shard_scaling(args.preset)
    print("  " + ", ".join(
        f"--shards {count} {entry['seconds']}s "
        f"({entry['speedup_vs_serial']}x)"
        for count, entry in shard_scaling["per_shards"].items()),
        flush=True)

    doc = {
        "schema": "repro-bench-experiments/1",
        "generated": datetime.date.today().isoformat(),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "engine": {
            "drain": drain,
            "chain": chain,
            "worker_reference": worker,
            "worker_reference_interpreted": worker_interp,
            "compiled_dispatch_speedup": round(speedup, 3),
        },
        "drivers": drivers,
        "shards": shard_scaling,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
