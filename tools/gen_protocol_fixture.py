"""Regenerate the protocol-equivalence A/B fixture.

The fixture (``tests/data/protocol_equivalence.json``) pins the exact
``run_cycles`` and the full :meth:`~repro.sim.stats.RunStats.digest` of
a matrix of deterministic runs across the protocol spectrum.  It was
generated from the hand-written home controllers *before* the
table-driven protocol engine replaced them; the test
``tests/test_protocol_equivalence.py`` replays every configuration and
asserts byte-identical statistics, proving the transition tables
equivalent to the controllers they replaced.

Regenerate only when simulated behaviour changes *intentionally* (e.g.
a cost-model retune), and say so in the commit message::

    PYTHONPATH=src python tools/gen_protocol_fixture.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.machine.machine import Machine  # noqa: E402
from repro.machine.params import MachineParams  # noqa: E402
from repro.workloads.aq import AdaptiveQuadrature  # noqa: E402
from repro.workloads.worker import WorkerBenchmark  # noqa: E402

FIXTURE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(__file__)),
    "tests", "data", "protocol_equivalence.json",
)

#: The six named spectrum points of the paper's Section 2.5 examples,
#: plus the Dir1SW broadcast protocol (which exercises the
#: broadcast/untracked paths none of the six reach).
SPECTRUM = (
    "DirnHNBS-",
    "DirnH5SNB",
    "DirnH1SNB,ACK",
    "DirnH1SNB,LACK",
    "DirnH1SNB",
    "DirnH0SNB,ACK",
    "Dir1H1SB,LACK",
)


def configurations():
    """Yield (config_id, machine_kwargs, workload_factory) tuples."""
    for protocol in SPECTRUM:
        yield (
            f"worker8x2-n16-{protocol}",
            {"protocol": protocol},
            lambda: WorkerBenchmark(worker_set_size=8, iterations=2),
        )
        yield (
            f"aq-n16-{protocol}",
            {"protocol": protocol},
            lambda: AdaptiveQuadrature(),
        )
    # Section 7 enhancement paths: sequential/dynamic invalidation and
    # migratory detection (exercises on_ack_sequential and the
    # migratory fetch/revert transitions).
    for protocol in ("DirnH5SNB", "DirnH2SNB"):
        yield (
            f"worker6x2-n16-seq-migratory-{protocol}",
            {
                "protocol": protocol,
                "invalidation_mode": "sequential",
                "migratory_detection": True,
            },
            lambda: WorkerBenchmark(worker_set_size=6, iterations=2),
        )
    # The optimized (assembly) software implementation of DirnH5SNB.
    yield (
        "worker8x2-n16-optimized-DirnH5SNB",
        {"protocol": "DirnH5SNB", "software": "optimized"},
        lambda: WorkerBenchmark(worker_set_size=8, iterations=2),
    )


def main() -> int:
    entries = []
    for config_id, machine_kwargs, workload_factory in configurations():
        machine = Machine(MachineParams(n_nodes=16), **machine_kwargs)
        stats = machine.run(workload_factory())
        entries.append({
            "id": config_id,
            "machine": {k: (v if isinstance(v, (str, bool, int)) else str(v))
                        for k, v in machine_kwargs.items()},
            "run_cycles": stats.run_cycles,
            "total_traps": stats.total_traps,
            "digest": stats.digest(),
        })
        print(f"{config_id:<45} {stats.run_cycles:>10,} cycles  "
              f"{entries[-1]['digest'][:12]}")
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump({"n_nodes": 16, "entries": entries}, fh, indent=1,
                  sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE_PATH} ({len(entries)} configurations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
