"""Legacy setup shim for environments without the `wheel` package."""

from setuptools import setup

setup()
