#!/usr/bin/env python3
"""Profile, detect, and optimize (paper Section 7).

Alewife reconfigures coherence protocols block-by-block (Section 3.1);
the paper's enhancement section proposes using enhanced protocol
software in a *profiling mode* during development to detect
widely-shared read-only data, then optimising the production version.

This example runs the full workflow on EVOLVE: its fitness table is read
by most of the machine and never written, so every re-read past the
pointer capacity costs a read-overflow trap under `DirnH5SNB`.  The
profiler finds those blocks; the production machine configures them with
the broadcast protocol (`Dir1H1SB,LACK`), whose reads never trap — the
broadcast penalty is never paid, because the data is never written.
"""

from repro import Machine, MachineParams
from repro.analysis import (
    AccessProfiler,
    apply_read_only_protocol,
    format_table,
    read_only_blocks,
)
from repro.workloads import Evolve


def make_machine() -> Machine:
    return Machine(MachineParams(n_nodes=64, victim_cache_enabled=True),
                   protocol="DirnH5SNB")


def main() -> None:
    print("1. Profiling run (development mode)...")
    profiling_machine = make_machine()
    profiling_machine.profiler = AccessProfiler()
    profiling_machine.run(Evolve())
    candidates = read_only_blocks(profiling_machine.profiler,
                                  min_readers=6)
    print(f"   {len(profiling_machine.profiler)} blocks profiled, "
          f"{len(candidates)} widely-shared read-only candidates\n")

    print("2. Production run with annotated blocks...")
    production = make_machine()
    apply_read_only_protocol(production, candidates)
    optimized = production.run(Evolve())

    print("3. Reference runs...\n")
    baseline = make_machine().run(Evolve())
    full_map = Machine(
        MachineParams(n_nodes=64, victim_cache_enabled=True),
        protocol="DirnHNBS-").run(Evolve())

    rows = [
        ("DirnH5SNB (baseline)", baseline.run_cycles,
         baseline.total_traps, f"{baseline.speedup:.1f}"),
        ("DirnH5SNB + annotations", optimized.run_cycles,
         optimized.total_traps, f"{optimized.speedup:.1f}"),
        ("DirnHNBS- (full map)", full_map.run_cycles,
         full_map.total_traps, f"{full_map.speedup:.1f}"),
    ]
    print(format_table(
        ["Configuration", "Run cycles", "Traps", "Speedup"],
        rows, title="EVOLVE on 64 nodes",
    ))
    print()
    gain = baseline.run_cycles / optimized.run_cycles
    closed = ((optimized.speedup - baseline.speedup)
              / max(full_map.speedup - baseline.speedup, 1e-9))
    print(f"The annotations make the five-pointer system {gain:.2f}x "
          f"faster, closing {closed:.0%} of its gap to full map — the "
          f"payoff the paper's Section 7 anticipates.")


if __name__ == "__main__":
    main()
