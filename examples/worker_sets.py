#!/usr/bin/env python3
"""Worker-set analysis (paper Section 5 / Figure 6).

Runs EVOLVE with worker-set tracking and prints the histogram of
worker-set sizes, plus the fraction of blocks a limited hardware
directory of each size would cover without software — the measurement
underlying the whole software-extension approach.
"""

from repro.analysis import (
    format_histogram,
    format_table,
    hardware_coverage,
    histogram_summary,
    run_one,
)
from repro.workloads import Evolve


def main() -> None:
    print("Running EVOLVE on 64 nodes with worker-set tracking...\n")
    stats = run_one(Evolve(), "DirnHNBS-", n_nodes=64,
                    track_worker_sets=True)
    histogram = stats.worker_set_histogram
    assert histogram is not None

    print(format_histogram(
        histogram, title="Worker-set sizes (log-scaled bars)"))
    print()

    summary = histogram_summary(histogram)
    print(f"blocks tracked     {summary['blocks']}")
    print(f"largest worker set {summary['max_size']}")
    print(f"mean worker set    {summary['mean_size']:.2f}")
    print(f"sets of size <= 4  {summary['small_fraction']:.1%}")
    print()

    rows = []
    for pointers in (0, 1, 2, 3, 4, 5, 8, 16, 64):
        rows.append((pointers,
                     f"{hardware_coverage(histogram, pointers):.1%}"))
    print(format_table(
        ["Hardware pointers", "Blocks handled without software"],
        rows,
        title="Directory coverage vs pointer count",
    ))
    print()
    print("Most worker sets fit in a handful of pointers — the "
          "observation that makes")
    print("software-extended directories cost-effective.  The tail of "
          "large sets is what")
    print("the extension software exists to handle.")


if __name__ == "__main__":
    main()
