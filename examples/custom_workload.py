#!/usr/bin/env python3
"""Writing your own workload against the public API.

A workload is an SPMD program: ``setup`` allocates shared memory on the
machine's heap, and ``thread`` yields architectural operations for each
node (reads, writes, compute bursts, barriers).  This example implements
a ring pipeline — each node repeatedly writes a buffer that its right
neighbour reads — and measures how the protocols handle its strictly
pairwise sharing (worker sets of size two, like AQ's producer/consumer
pattern).
"""

from typing import Iterator

from repro import Machine, MachineParams
from repro.analysis import format_table
from repro.workloads import Op, Workload


class RingPipeline(Workload):
    """Each node writes a buffer; its right neighbour reads it."""

    name = "ring"

    def __init__(self, rounds: int = 12, blocks_per_link: int = 2) -> None:
        self.rounds = rounds
        self.blocks_per_link = blocks_per_link

    def setup(self, machine: Machine) -> None:
        n = machine.params.n_nodes
        self._code = machine.register_code("ring-stage", lines=1)
        # One buffer per link, homed at the producing node.
        self.buffers = [
            [machine.heap.alloc_block(node)
             for _ in range(self.blocks_per_link)]
            for node in range(n)
        ]

    def thread(self, machine: Machine, node_id: int) -> Iterator[Op]:
        n = machine.params.n_nodes
        left = (node_id - 1) % n
        for _round in range(self.rounds):
            # Produce into my buffer.
            for addr in self.buffers[node_id]:
                yield ("write", addr)
                yield ("compute", 40, self._code)
            yield ("barrier",)
            # Consume my left neighbour's buffer.
            for addr in self.buffers[left]:
                yield ("read", addr)
                yield ("compute", 40, self._code)
            yield ("barrier",)


def main() -> None:
    print("Ring pipeline (pairwise sharing) across the spectrum...\n")
    rows = []
    for protocol in ("DirnH0SNB,ACK", "DirnH1SNB,ACK", "DirnH2SNB",
                     "DirnH5SNB", "DirnHNBS-"):
        machine = Machine(MachineParams(n_nodes=16), protocol=protocol)
        stats = machine.run(RingPipeline())
        rows.append((protocol, stats.run_cycles, stats.total_traps,
                     f"{stats.speedup:.1f}"))
    print(format_table(
        ["Protocol", "Run cycles", "Traps", "Speedup"],
        rows, title="RingPipeline on 16 nodes",
    ))
    print()
    print("Pairwise sharing fits in a single hardware pointer, so every "
          "protocol with at")
    print("least one pointer performs identically — only the "
          "software-only directory pays.")


if __name__ == "__main__":
    main()
