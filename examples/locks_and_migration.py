#!/usr/bin/env python3
"""Section 7 enhancements in action: FIFO locks and migratory detection.

A shared work counter is the classic migratory object: each node locks
it, reads it, bumps it, writes it back, unlocks.  The FIFO lock (built
on the protocol extension software) gives fair, queue-ordered access;
migratory detection then notices the read-then-write migration pattern
and starts answering the post-lock *read* with an exclusive copy, saving
every node's upgrade transaction.
"""

from typing import Iterator

from repro import Machine, MachineParams
from repro.analysis import format_table
from repro.workloads import Op, Workload


class LockedWorkCounter(Workload):
    """Nodes repeatedly grab work items from a shared counter."""

    name = "work-counter"

    def __init__(self, grabs_per_node: int = 6) -> None:
        self.grabs = grabs_per_node
        self.next_item = 0
        self.claimed = []

    def setup(self, machine: Machine) -> None:
        self.lock = machine.create_lock(home=0)
        self.counter = machine.heap.alloc_block(0)
        self._code = machine.register_code("grab-work", lines=1)

    def thread(self, machine: Machine, node_id: int) -> Iterator[Op]:
        for _ in range(self.grabs):
            yield ("lock", self.lock)
            yield ("read", self.counter)
            yield ("compute", 15, self._code)
            item = self.next_item
            self.next_item += 1
            self.claimed.append((node_id, item))
            yield ("write", self.counter)
            yield ("unlock", self.lock)
            yield ("compute", 120, self._code)  # process the item


def run(migratory: bool):
    machine = Machine(MachineParams(n_nodes=16), protocol="DirnH5SNB",
                      migratory_detection=migratory)
    workload = LockedWorkCounter()
    stats = machine.run(workload)
    requests = (stats.messages_by_kind().get("rreq", 0)
                + stats.messages_by_kind().get("wreq", 0))
    return machine, workload, stats, requests


def main() -> None:
    rows = []
    for migratory in (False, True):
        machine, workload, stats, requests = run(migratory)
        assert workload.next_item == 16 * 6  # no lost updates
        state = machine.locks.locks[workload.lock]
        rows.append((
            "on" if migratory else "off",
            stats.run_cycles,
            requests,
            state.acquisitions,
            state.max_queue,
        ))
    print(format_table(
        ["Migratory detection", "Run cycles", "Coherence requests",
         "Lock acquisitions", "Peak lock queue"],
        rows,
        title="Locked work counter on 16 nodes (DirnH5SNB)",
    ))
    print()
    off, on = rows[0], rows[1]
    print(f"Every one of the {off[3]} critical sections performed a "
          f"read-then-write of the")
    print(f"counter block; migratory detection converts each pair into "
          f"one exclusive grant")
    print(f"({off[2]} -> {on[2]} coherence requests, "
          f"{(off[1] - on[1]) / off[1]:.0%} faster).")


if __name__ == "__main__":
    main()
