#!/usr/bin/env python3
"""The TSP instruction/data thrashing case study (paper Figure 3).

TSP keeps two globally-shared memory blocks (the seeded best bound and a
tour counter) that happen to conflict with commonly-run instruction
lines in Alewife's combined direct-mapped cache.  Every runtime
invocation evicts them; every bound check then misses all the way to
node 0, and under a software-extended protocol roughly every fifth such
miss traps node 0's processor.

This example reproduces the paper's diagnosis step by step:

1. the base run — the five-pointer protocol is several times slower
   than full map;
2. *perfect ifetch* — a simulator option removing instructions from the
   memory system confirms the diagnosis;
3. victim caching — the practical fix: a few extra buffers absorb the
   conflicts and restore software-extended performance.
"""

from repro.analysis import format_table, run_one
from repro.workloads import TSP

CONFIGS = (
    ("base (thrashing)", dict(victim_cache=False, perfect_ifetch=False)),
    ("perfect ifetch", dict(victim_cache=False, perfect_ifetch=True)),
    ("victim cache", dict(victim_cache=True, perfect_ifetch=False)),
)

PROTOCOLS = ("DirnH5SNB", "DirnHNBS-")


def main() -> None:
    print("TSP on 64 nodes, three configurations x two protocols...\n")
    rows = []
    for label, kwargs in CONFIGS:
        row = [label]
        for protocol in PROTOCOLS:
            stats = run_one(TSP(), protocol, n_nodes=64, **kwargs)
            row.append(f"{stats.speedup:.1f}")
            if protocol == "DirnH5SNB":
                row.append(f"{stats.total_traps}")
        rows.append(row)
    print(format_table(
        ["Configuration", "H5 speedup", "H5 traps", "Full-map speedup"],
        rows, title="Figure 3 reproduction",
    ))
    print()
    print("In the base run the hot blocks ping-pong with code; the "
          "resulting re-reads")
    print("overflow the five-pointer directory and swamp node 0's "
          "processor with traps.")
    print("Perfect instruction fetch or a few victim buffers eliminate "
          "the conflict, and")
    print("the software-extended protocol returns to within a few "
          "percent of full map.")


if __name__ == "__main__":
    main()
