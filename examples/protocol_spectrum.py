#!/usr/bin/env python3
"""The cost/performance spectrum (the heart of the paper).

Sweeps the full spectrum of software-extended protocols — from the
software-only directory (no hardware pointers) through the one-pointer
variants up to full map — on one application, and prints speedups, the
fraction of full-map performance each point achieves, and the per-block
hardware directory cost it pays.

Usage::

    python examples/protocol_spectrum.py [app] [n_nodes]

where ``app`` is one of tsp, aq, smgrid, evolve, mp3d, water
(default: water) and ``n_nodes`` a square node count (default 64).
"""

import sys

from repro import spec_of
from repro.analysis import (
    APPLICATIONS,
    FIGURE4_PROTOCOLS,
    format_table,
    relative_performance,
    run_one,
)


def pointer_cost_bits(protocol: str, n_nodes: int) -> int:
    """Directory bits per memory block a protocol pays in hardware."""
    spec = spec_of(protocol)
    node_bits = max(n_nodes - 1, 1).bit_length()
    if spec.full_map:
        return n_nodes  # one bit per node
    bits = spec.hw_pointers * node_bits
    if spec.local_bit:
        bits += 1
    if spec.is_software_only:
        bits = 1  # the remote-access bit
    return bits


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "water"
    n_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    if app not in APPLICATIONS:
        raise SystemExit(f"unknown app {app!r}; pick from "
                         f"{', '.join(APPLICATIONS)}")

    print(f"Sweeping the protocol spectrum on {app.upper()} "
          f"({n_nodes} nodes, victim caching on)...\n")
    speedups = {}
    for protocol in FIGURE4_PROTOCOLS:
        stats = run_one(APPLICATIONS[app](), protocol, n_nodes=n_nodes)
        speedups[protocol] = stats.speedup

    rel = relative_performance(speedups)
    rows = [
        (protocol,
         f"{speedups[protocol]:.1f}",
         f"{rel[protocol] * 100:.0f}%",
         pointer_cost_bits(protocol, n_nodes))
        for protocol in FIGURE4_PROTOCOLS
    ]
    print(format_table(
        ["Protocol", "Speedup", "vs full map", "Directory bits/block"],
        rows,
        title=f"{app.upper()} on {n_nodes} nodes",
    ))
    print()
    print("The tradeoff the paper quantifies: each hardware pointer "
          "costs directory bits on")
    print("every memory block in the machine; the software extension "
          "keeps cost constant per")
    print("node while staying within a modest factor of full-map "
          "performance.")


if __name__ == "__main__":
    main()
