#!/usr/bin/env python3
"""Quickstart: build a machine, pick a protocol, run a workload.

This is the smallest complete use of the library: a 16-node Alewife
machine running the WORKER synthetic benchmark under the LimitLESS
five-pointer protocol (`DirnH5SNB`, Alewife's boot default), compared
against the full-map directory.
"""

from repro import Machine, MachineParams
from repro.workloads import WorkerBenchmark


def main() -> None:
    params = MachineParams(n_nodes=16)

    print("WORKER benchmark, 8-node worker sets, 16 nodes\n")
    results = {}
    for protocol in ("DirnH5SNB", "DirnHNBS-"):
        machine = Machine(params, protocol=protocol)
        workload = WorkerBenchmark(worker_set_size=8, iterations=4)
        stats = machine.run(workload)
        results[protocol] = stats
        print(f"protocol {protocol}")
        print(f"  run time          {stats.run_cycles:>10,} cycles")
        print(f"  software traps    {stats.total_traps:>10,}")
        print(f"  handler cycles    {stats.total('handler_cycles'):>10,}")
        print(f"  invalidations     "
              f"{stats.total('invalidations_hw') + stats.total('invalidations_sw'):>10,}")
        print(f"  cache hit rate    "
              f"{stats.total('cache_hits') / (stats.total('cache_hits') + stats.total('cache_misses')):>10.1%}")
        print()

    ratio = (results["DirnH5SNB"].run_cycles
             / results["DirnHNBS-"].run_cycles)
    print(f"DirnH5SNB takes {ratio:.2f}x the full-map run time on this "
          f"stress test;")
    print("on real applications the gap shrinks to 0-35% (see "
          "benchmarks/test_fig4_application_speedups.py).")


if __name__ == "__main__":
    main()
