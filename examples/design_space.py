#!/usr/bin/env python3
"""Design-space exploration: synthetic sharing + the analytic model.

Suppose you know (or profiled) an application's worker-set histogram but
have not ported the application.  The synthetic generator builds a block
population with exactly that mix, and the analytic model predicts the
software traps each protocol would take — cross-checked here against
the simulator on a Figure-6-like sharing mix.
"""

from repro import Machine, MachineParams
from repro.analysis import format_table, predict_overhead
from repro.workloads import SyntheticSharing, figure6_like_histogram

PROTOCOLS = ("DirnH1SNB,LACK", "DirnH2SNB", "DirnH5SNB", "DirnHNBS-")
ITERATIONS = 2


def main() -> None:
    histogram = figure6_like_histogram()
    total_blocks = sum(histogram.values())
    print(f"Sharing mix ({total_blocks} blocks): {histogram}\n")

    rows = []
    for protocol in PROTOCOLS:
        predicted = predict_overhead(protocol, histogram,
                                     read_rounds=ITERATIONS,
                                     write_rounds=ITERATIONS)
        machine = Machine(MachineParams(n_nodes=25), protocol=protocol)
        stats = machine.run(SyntheticSharing(histogram,
                                             iterations=ITERATIONS,
                                             write_fraction=1.0))
        rows.append((
            protocol,
            predicted.total_traps,
            stats.total_traps,
            f"{predicted.handler_cycles:,}",
            f"{stats.total('handler_cycles'):,}",
        ))
    print(format_table(
        ["Protocol", "Traps (model)", "Traps (simulated)",
         "Handler cycles (model)", "Handler cycles (simulated)"],
        rows,
        title="Analytic model vs simulation (25 nodes, 2 iterations)",
    ))
    print()
    print("The closed-form model counts overflow traps per worker-set "
          "size and prices them")
    print("with the Table-2 cost model; on controlled traffic it matches "
          "the simulator's")
    print("trap counts exactly, so disagreements on real applications "
          "isolate the *timing*")
    print("effects (contention, serialisation) from protocol structure.")


if __name__ == "__main__":
    main()
